"""Sorted access lists and access accounting for top-k processing.

Fagin-style algorithms (TA, NRA and the paper's GRECA) consume *sorted lists*
of ``(key, score)`` entries through two kinds of accesses:

* **Sequential access (SA)** — read the next entry of a list, advancing its
  cursor.  The value under the cursor upper-bounds every not-yet-read entry
  of that list because entries are sorted in decreasing score order.
* **Random access (RA)** — look up the score of a given key directly.

GRECA uses three kinds of lists (Section 3.1):

* a *preference list* ``PL_u`` per group member, holding every item sorted by
  ``apref(u, i)``;
* a *static affinity list* per member ``u_i``, holding the pairs ``(u_i, u_j)``
  with ``j > i`` sorted by static affinity;
* one *periodic affinity list* per member per time period, analogous to the
  static lists but holding the per-period affinities ``aff_P``.

:class:`AccessCounter` tallies SAs and RAs globally; the percentage of SAs
against the total number of entries is the efficiency metric reported by all
of the paper's Figures 5-8.

Columnar engine
---------------

A list is stored *columnar*: one contiguous float64 score array plus a
parallel key tuple (and, optionally, a caller-supplied integer ``key_index``
mapping each sorted position to a dense id such as an item column).  Batch
consumers advance the cursor ``depth`` entries at a time through
:meth:`SortedAccessList.sequential_block`, which records the SAs in one
:meth:`AccessCounter.record_sequential` call and hands back array *views* —
no per-entry Python objects are created on the hot path.  The classic
per-entry :meth:`SortedAccessList.sequential_access` remains as a thin
wrapper with identical semantics and accounting (one SA per call), so a
block of ``d`` entries costs exactly the same ``d`` SAs either way.

Entry ordering is by decreasing score with ties broken by ``repr(key)``;
bulk constructors (:meth:`SortedAccessList.from_columns`) accept pre-sorted
columns so that builders can share one tie-break ranking across many lists
instead of re-sorting per list in Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Hashable, Iterable, Sequence, TypeVar

import numpy as np

from repro.exceptions import AlgorithmError

KeyT = TypeVar("KeyT", bound=Hashable)

#: List kinds used by GRECA's round-robin schedule.
KIND_PREFERENCE = "preference"
KIND_STATIC_AFFINITY = "static-affinity"
KIND_PERIODIC_AFFINITY = "periodic-affinity"

#: Shared empty score block returned by exhausted lists.
_EMPTY_SCORES = np.empty(0, dtype=float)


def repr_tie_break_ranks(objects: Sequence) -> np.ndarray:
    """Rank of every position under the deterministic ``repr`` ordering.

    The reproduction breaks every score tie by ``repr`` of the key/item; this
    single helper produces the integer ranking that ``np.lexsort``-based
    consumers (list builders, candidate buffers, key universes) feed as their
    secondary sort key, so the tie-break contract lives in exactly one place.
    """
    order = sorted(range(len(objects)), key=lambda position: repr(objects[position]))
    ranks = np.empty(len(objects), dtype=np.int64)
    ranks[np.asarray(order, dtype=np.int64)] = np.arange(len(objects))
    return ranks


@dataclass
class AccessCounter:
    """Running tally of sequential and random accesses."""

    sequential: int = 0
    random: int = 0

    def record_sequential(self, count: int = 1) -> None:
        """Record ``count`` sequential accesses."""
        self.sequential += count

    def record_random(self, count: int = 1) -> None:
        """Record ``count`` random accesses."""
        self.random += count

    @property
    def total(self) -> int:
        """Total number of accesses of either kind."""
        return self.sequential + self.random

    def reset(self) -> None:
        """Reset both counters to zero."""
        self.sequential = 0
        self.random = 0


@dataclass(frozen=True)
class ListEntry(Generic[KeyT]):
    """A single ``(key, score)`` entry of a sorted list."""

    key: KeyT
    score: float


class SortedAccessList(Generic[KeyT]):
    """A score-descending list supporting counted sequential and random access.

    Parameters
    ----------
    name:
        Identifier used in traces and error messages (e.g. ``"PL(u1)"``).
    kind:
        One of :data:`KIND_PREFERENCE`, :data:`KIND_STATIC_AFFINITY`,
        :data:`KIND_PERIODIC_AFFINITY`.
    entries:
        The ``(key, score)`` pairs; they are sorted by decreasing score (ties
        broken by key representation for determinism).
    counter:
        Optional shared :class:`AccessCounter`.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        entries: Iterable[tuple[KeyT, float]],
        counter: AccessCounter | None = None,
    ) -> None:
        ordered = sorted(entries, key=lambda entry: (-entry[1], repr(entry[0])))
        keys = tuple(entry[0] for entry in ordered)
        scores = np.fromiter((entry[1] for entry in ordered), dtype=float, count=len(ordered))
        self._init_columns(name, kind, keys, scores, counter, key_index=None)

    @classmethod
    def from_columns(
        cls,
        name: str,
        kind: str,
        keys: Sequence[KeyT],
        scores: np.ndarray,
        counter: AccessCounter | None = None,
        key_index: np.ndarray | None = None,
    ) -> "SortedAccessList[KeyT]":
        """Build a list from *pre-sorted* columnar data without re-sorting.

        ``keys[i]`` / ``scores[i]`` must already be in decreasing score order
        with ties broken by ``repr(key)`` (the same order ``__init__``
        produces); ``key_index`` optionally carries a dense integer id per
        sorted position (e.g. the item column), for consumers that scatter
        block reads into arrays.
        """
        instance = cls.__new__(cls)
        instance._init_columns(
            name,
            kind,
            tuple(keys),
            np.ascontiguousarray(scores, dtype=float),
            counter,
            key_index,
        )
        return instance

    def _init_columns(
        self,
        name: str,
        kind: str,
        keys: tuple[KeyT, ...],
        scores: np.ndarray,
        counter: AccessCounter | None,
        key_index: np.ndarray | None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.counter = counter if counter is not None else AccessCounter()
        self._keys = keys
        self._scores = scores
        self._key_index = key_index
        self._scores_by_key = dict(zip(keys, scores.tolist()))
        if len(self._scores_by_key) != len(keys):
            raise AlgorithmError(f"list {name!r} contains duplicate keys")
        self._entry_cache: tuple[ListEntry[KeyT], ...] | None = None
        self._cursor = 0

    # -- introspection -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SortedAccessList({self.name!r}, kind={self.kind!r}, size={len(self)})"

    @property
    def entries(self) -> tuple[ListEntry[KeyT], ...]:
        """All entries in sorted order (no access is counted)."""
        if self._entry_cache is None:
            self._entry_cache = tuple(
                ListEntry(key, score) for key, score in zip(self._keys, self._scores.tolist())
            )
        return self._entry_cache

    @property
    def keys(self) -> tuple[KeyT, ...]:
        """All keys in sorted order (no access is counted)."""
        return self._keys

    @property
    def scores(self) -> np.ndarray:
        """Read-only view of all scores in sorted order (no access is counted)."""
        view = self._scores.view()
        view.flags.writeable = False
        return view

    @property
    def key_index(self) -> np.ndarray | None:
        """Dense integer id per sorted position, when supplied at construction."""
        return self._key_index

    @property
    def position(self) -> int:
        """Number of entries already read sequentially."""
        return self._cursor

    @property
    def remaining(self) -> int:
        """Number of entries not yet read sequentially."""
        return len(self._keys) - self._cursor

    @property
    def exhausted(self) -> bool:
        """``True`` once every entry has been read sequentially."""
        return self._cursor >= len(self._keys)

    @property
    def cursor_score(self) -> float:
        """Upper bound on the score of any not-yet-read entry.

        Before any read this is the top score; after the list is exhausted it
        drops to 0 (the minimum possible score for normalised components).
        """
        if not len(self._keys):
            return 0.0
        if self._cursor == 0:
            return float(self._scores[0])
        if self.exhausted:
            return 0.0
        # NRA convention: the last value read bounds every remaining value.
        return float(self._scores[self._cursor - 1])

    # -- accesses ----------------------------------------------------------------------

    def sequential_access(self) -> ListEntry[KeyT] | None:
        """Read the next entry (one SA); ``None`` when the list is exhausted."""
        if self.exhausted:
            return None
        cursor = self._cursor
        self._cursor = cursor + 1
        self.counter.record_sequential()
        return ListEntry(self._keys[cursor], float(self._scores[cursor]))

    def sequential_block(self, depth: int) -> tuple[Sequence[KeyT], np.ndarray]:
        """Read up to ``depth`` entries in one call, recording their SAs in bulk.

        Returns ``(keys, scores)`` slices covering the entries actually read
        (empty when the list is already exhausted).  ``depth`` sequential
        accesses through this method are indistinguishable — in cursor state
        and in the shared :class:`AccessCounter` — from ``depth`` calls to
        :meth:`sequential_access`.
        """
        if depth <= 0:
            raise AlgorithmError("sequential_block depth must be positive")
        start = self._cursor
        stop = min(start + depth, len(self._keys))
        if stop == start:
            return (), _EMPTY_SCORES
        self._cursor = stop
        self.counter.record_sequential(stop - start)
        scores = self._scores[start:stop].view()
        scores.flags.writeable = False  # consumers must not corrupt the backing array
        return self._keys[start:stop], scores

    def drain(self) -> int:
        """Read every remaining entry in one bulk call; returns the count read.

        Equivalent — in cursor state and recorded SAs — to calling
        :meth:`sequential_access` until exhaustion, which is exactly the
        naive full-scan access pattern.
        """
        remaining = self.remaining
        if remaining:
            self.sequential_block(remaining)
        return remaining

    def random_access(self, key: KeyT) -> float:
        """Look up the score of ``key`` (one RA); missing keys score 0."""
        self.counter.record_random()
        return self._scores_by_key.get(key, 0.0)

    def peek(self, key: KeyT) -> float:
        """Score of ``key`` *without* counting an access (for tests/validation)."""
        return self._scores_by_key.get(key, 0.0)

    def reset(self) -> None:
        """Rewind the cursor (the shared counter is left untouched)."""
        self._cursor = 0


def build_preference_list(
    user_id: int,
    aprefs: dict[KeyT, float],
    counter: AccessCounter | None = None,
) -> SortedAccessList[KeyT]:
    """Build the preference list ``PL_u`` from an ``{item: apref}`` mapping."""
    return SortedAccessList(
        name=f"PL(u{user_id})",
        kind=KIND_PREFERENCE,
        entries=aprefs.items(),
        counter=counter,
    )


def build_affinity_lists(
    members: Sequence[int],
    values: dict[tuple[int, int], float],
    kind: str,
    label: str,
    counter: AccessCounter | None = None,
) -> list[SortedAccessList[tuple[int, int]]]:
    """Partition pairwise affinity values into per-member lists.

    Following Section 3.1, the ``n (n - 1) / 2`` pair values are split into
    ``n - 1`` lists: the ``i``-th list belongs to member ``u_i`` and holds its
    pairs with every later member ``u_j`` (``j > i``), avoiding redundancy.
    Keys are canonical ``(min, max)`` user-id pairs.

    Parameters
    ----------
    members:
        Group members in a fixed order.
    values:
        Mapping from unordered pair (any order) to affinity value; missing
        pairs default to 0.
    kind / label:
        List kind and a label used in list names (e.g. ``"affS"`` or
        ``"affV[p1]"``).
    """
    if len(members) < 2:
        raise AlgorithmError("affinity lists require at least two group members")
    canonical = {}
    for (left, right), value in values.items():
        canonical[(min(left, right), max(left, right))] = float(value)

    lists: list[SortedAccessList[tuple[int, int]]] = []
    for index, owner in enumerate(members[:-1]):
        entries = []
        for other in members[index + 1 :]:
            key = (min(owner, other), max(owner, other))
            entries.append((key, canonical.get(key, 0.0)))
        lists.append(
            SortedAccessList(
                name=f"L{label}(u{owner})",
                kind=kind,
                entries=entries,
                counter=counter,
            )
        )
    return lists


def total_entries(lists: Iterable[SortedAccessList]) -> int:
    """Total number of entries across lists — the naive algorithm's access cost."""
    return sum(len(access_list) for access_list in lists)
