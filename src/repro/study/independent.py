"""Independent evaluation protocol (Section 4.1.4, Figure 1).

In the independent evaluation each participant observes one recommendation
list at a time and scores how satisfied they would be watching those movies
with the other group members (0-5, reported as a percentage).  Six
recommendation configurations are evaluated, one per chart of Figure 1:

==== ==========================================================
A    default: affinity-aware, discrete time model, AP consensus
B    affinity-agnostic
C    time-agnostic (affinity without its temporal component)
D    continuous time model
E    MO (least-misery) consensus
F    PD (pairwise-disagreement) consensus
==== ==========================================================

The reproduction replaces the human score with the satisfaction oracle and
reports, per group characteristic (Sim / Diss / Small / Large / High Aff /
Low Aff), the mean satisfaction percentage over the study groups exhibiting
that characteristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.study.environment import CHARACTERISTICS, StudyEnvironment

#: The recommendation configuration behind each chart of Figure 1.
FIGURE1_CONFIGURATIONS: dict[str, dict[str, str]] = {
    "A (Default)": {"affinity": "discrete", "consensus": "AP"},
    "B (Affinity-agnostic)": {"affinity": "none", "consensus": "AP"},
    "C (Time-agnostic)": {"affinity": "time-agnostic", "consensus": "AP"},
    "D (Continuous)": {"affinity": "continuous", "consensus": "AP"},
    "E (MO)": {"affinity": "discrete", "consensus": "MO"},
    "F (PD)": {"affinity": "discrete", "consensus": "PD"},
}


@dataclass(frozen=True)
class IndependentChart:
    """One chart of Figure 1: a configuration and its per-characteristic scores."""

    label: str
    affinity: str
    consensus: str
    preference_percent: Mapping[str, float]

    def overall(self) -> float:
        """Mean preference percentage across characteristics."""
        values = list(self.preference_percent.values())
        return sum(values) / len(values) if values else 0.0


class IndependentEvaluation:
    """Run the independent evaluation over the study environment."""

    def __init__(self, environment: StudyEnvironment, k: int = 5) -> None:
        self.environment = environment
        self.k = k

    def evaluate_configuration(self, affinity: str, consensus: str, label: str = "") -> IndependentChart:
        """Score one recommendation configuration on every group characteristic."""
        env = self.environment
        per_characteristic: dict[str, float] = {}
        cache: dict[tuple[int, ...], float] = {}
        for characteristic in CHARACTERISTICS:
            scores = []
            for group in env.groups_with(characteristic):
                if group.members not in cache:
                    recommendation = env.recommender.recommend(
                        list(group.members),
                        k=self.k,
                        period=env.period,
                        consensus=consensus,
                        affinity=affinity,
                        algorithm="naive",
                        exclude_rated=False,
                    )
                    cache[group.members] = env.oracle.satisfaction_percent(
                        recommendation.items, list(group.members), env.period
                    )
                scores.append(cache[group.members])
            per_characteristic[characteristic] = (
                sum(scores) / len(scores) if scores else 0.0
            )
        return IndependentChart(
            label=label or f"{consensus}/{affinity}",
            affinity=affinity,
            consensus=consensus,
            preference_percent=per_characteristic,
        )

    def run(self) -> dict[str, IndependentChart]:
        """Evaluate all six Figure 1 configurations."""
        charts = {}
        for label, config in FIGURE1_CONFIGURATIONS.items():
            charts[label] = self.evaluate_configuration(
                affinity=config["affinity"], consensus=config["consensus"], label=label
            )
        return charts
