"""Access-equivalence of the batched columnar engine against the seed engine.

The columnar refactor (batched ``sequential_block`` reads, in-place bound
maintenance, incremental pair-affinity cache, numpy candidate buffer) is
required to be *observationally identical* to the original per-entry
implementation: same sequential/random access counts, same top-k items, same
stopping reasons, same round counts.  ``tests/data/engine_golden.json``
freezes those observables as produced by the seed implementation (captured by
``scripts/capture_engine_golden.py`` before the refactor); these tests replay
the deterministic grid from :mod:`engine_grid` and compare bit-for-bit.
"""

from __future__ import annotations

import json
import os

import pytest

from engine_grid import (
    GRECA_CASES,
    TOPK_CASES,
    build_greca_case,
    greca_case_inputs,
    run_baseline_case,
    run_greca_case,
    run_topk_case,
)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "engine_golden.json")


@pytest.fixture(scope="module")
def golden() -> dict:
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _golden_record(golden: dict, section: str, case_id: str) -> dict:
    for record in golden[section]:
        if record["case_id"] == case_id:
            return record
    raise AssertionError(
        f"no golden record for {section}/{case_id}; regenerate with "
        "scripts/capture_engine_golden.py from a known-equivalent revision"
    )


@pytest.mark.parametrize("case", GRECA_CASES, ids=lambda case: case["case_id"])
def test_greca_matches_seed_engine(golden, case):
    """GRECA: SA/RA counts, items, stopping reason and rounds match the seed."""
    expected = _golden_record(golden, "greca", case["case_id"])
    assert run_greca_case(case) == expected


@pytest.mark.parametrize("case", TOPK_CASES, ids=lambda case: case["case_id"])
def test_nra_matches_seed_engine(golden, case):
    """NRA: SA/RA counts, items and rounds match the seed implementation."""
    expected = _golden_record(golden, "nra", case["case_id"])
    assert run_topk_case(case, "nra") == expected


@pytest.mark.parametrize("case", TOPK_CASES, ids=lambda case: case["case_id"])
def test_ta_matches_seed_engine(golden, case):
    """TA: SA/RA counts, items and rounds match the seed implementation."""
    expected = _golden_record(golden, "ta", case["case_id"])
    assert run_topk_case(case, "ta") == expected


@pytest.mark.parametrize("case", GRECA_CASES, ids=lambda case: case["case_id"])
def test_naive_baseline_matches_per_entry_reference(golden, case):
    """Batched NaiveFullScan: SA/RA counts and items match the reference capture."""
    expected = _golden_record(golden, "naive", case["case_id"])
    assert run_baseline_case(case, "naive") == expected


@pytest.mark.parametrize("case", GRECA_CASES, ids=lambda case: case["case_id"])
def test_ta_baseline_matches_per_entry_reference(golden, case):
    """Batched TA baseline: SA/RA counts and items match the reference capture."""
    expected = _golden_record(golden, "ta_baseline", case["case_id"])
    assert run_baseline_case(case, "ta_baseline") == expected


def test_naive_golden_records_read_every_entry(golden):
    """Regression: the naive scan is exactly 100% SA on every grid instance."""
    for record in golden["naive"]:
        assert record["sequential_accesses"] == record["total_entries"]
        assert record["random_accesses"] == 0


@pytest.mark.parametrize(
    "case",
    [GRECA_CASES[1], GRECA_CASES[8], GRECA_CASES[12]],
    ids=lambda case: case["case_id"],
)
def test_index_reuse_layer_is_bit_identical(case):
    """Factory-derived indexes replay GRECA bit-for-bit vs fresh construction.

    The reuse layer (shared columnar substrate + per-point affinity
    dictionaries) must be observationally indistinguishable from building a
    fresh ``GrecaIndex`` at every sweep point.
    """
    from repro.core.greca import GrecaIndexFactory

    index, algorithm = build_greca_case(case)
    inputs = greca_case_inputs(case)
    factory = GrecaIndexFactory(
        inputs["members"], inputs["aprefs"], max_apref=index.max_apref
    )
    derived = factory.build(
        inputs["static"],
        periodic=inputs["periodic"],
        averages=inputs["averages"],
        time_model=inputs["time_model"],
    )
    fresh_result = algorithm.run(index)
    derived_result = algorithm.run(derived)
    assert fresh_result == derived_result


def test_grid_covers_every_golden_record(golden):
    """Every frozen golden record is exercised (no silently dropped cases)."""
    for section in ("greca", "naive", "ta_baseline"):
        assert {case["case_id"] for case in GRECA_CASES} == {
            record["case_id"] for record in golden[section]
        }
    for section in ("nra", "ta"):
        assert {case["case_id"] for case in TOPK_CASES} == {
            record["case_id"] for record in golden[section]
        }


def test_batched_block_reads_match_per_entry_reads():
    """A block read is access-for-access identical to repeated single reads."""
    from repro.core.lists import KIND_PREFERENCE, AccessCounter, SortedAccessList

    entries = [(item, float((item * 37) % 11)) for item in range(50)]
    per_entry = SortedAccessList("L", KIND_PREFERENCE, entries, AccessCounter())
    blocked = SortedAccessList("L", KIND_PREFERENCE, entries, AccessCounter())

    read_single = [per_entry.sequential_access() for _ in range(17)]
    keys, scores = blocked.sequential_block(17)
    assert [entry.key for entry in read_single] == list(keys)
    assert [entry.score for entry in read_single] == list(scores)
    assert per_entry.counter.sequential == blocked.counter.sequential == 17
    assert per_entry.position == blocked.position
    assert per_entry.cursor_score == blocked.cursor_score

    # Over-long blocks stop at exhaustion and account only what was read.
    keys, scores = blocked.sequential_block(1000)
    assert len(keys) == 33 and blocked.exhausted
    assert blocked.counter.sequential == 50
    keys, scores = blocked.sequential_block(4)
    assert keys == () and scores.size == 0
    assert blocked.counter.sequential == 50
