"""Long-lived group-recommendation serving over the warm experiment substrate.

* :mod:`repro.service.service` — :class:`GrecaService`, the asyncio
  front-end coalescing concurrent :class:`GroupQuery` submissions into
  group-major batches dispatched on the environment's supervised persistent
  pool, answering with bit-identical-to-serial :class:`QueryResponse`
  records plus per-query :class:`QueryLatency` accounting;
* :mod:`repro.service.loadgen` — deterministic load generation and the
  p50/p95/p99 latency summary the service bench records;
* ``python -m repro.service`` — the CLI entry point (smoke serving, load
  generation, graceful SIGTERM/SIGINT drain with a /dev/shm-clean check).
"""

from repro.service.loadgen import (
    LatencySummary,
    default_queries,
    percentile,
    run_load,
    summarise_latencies,
)
from repro.service.service import (
    GrecaService,
    GroupQuery,
    QueryLatency,
    QueryResponse,
    ServiceConfig,
)

__all__ = [
    "GrecaService",
    "GroupQuery",
    "LatencySummary",
    "QueryLatency",
    "QueryResponse",
    "ServiceConfig",
    "default_queries",
    "percentile",
    "run_load",
    "summarise_latencies",
]
