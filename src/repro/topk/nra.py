"""Generic No-Random-Access (NRA) algorithm (Fagin, Lotem, Naor 2001).

GRECA "mimics the cursor movement of traditional NRA" (Lemma 3), so this
module provides a reference implementation of NRA over arbitrary sorted
lists and an arbitrary monotone aggregation function.  It serves two
purposes in the reproduction:

* a validation oracle — the property-based tests check that NRA and a full
  scan agree, and that GRECA's access pattern is the NRA round-robin; and
* a reusable substrate for any other top-k experiments a downstream user may
  want to run.

The implementation is deliberately close to the textbook description: a
round-robin of sequential accesses, a worst-case/best-case score pair per
seen object and termination when the best case of every unseen or non-top-k
object cannot beat the worst case of the current top-k.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Mapping, Sequence

from repro.core.lists import AccessCounter, SortedAccessList, total_entries
from repro.exceptions import AlgorithmError

#: A monotone aggregation: maps one score per list to a single scalar.
AggregationFn = Callable[[Sequence[float]], float]


@dataclass(frozen=True)
class TopKResult:
    """Result of a generic top-k computation."""

    items: tuple[Hashable, ...]
    lower_bounds: Mapping[Hashable, float]
    upper_bounds: Mapping[Hashable, float]
    sequential_accesses: int
    random_accesses: int
    total_entries: int
    rounds: int

    @property
    def percent_sequential_accesses(self) -> float:
        """Fraction of entries read sequentially, in percent."""
        if self.total_entries == 0:
            return 0.0
        return 100.0 * self.sequential_accesses / self.total_entries


class NoRandomAccessAlgorithm:
    """NRA over ``len(lists)`` sorted lists with a monotone aggregation.

    Parameters
    ----------
    aggregation:
        Monotone function combining one component score per list; missing
        components are replaced by ``missing_low`` (worst case) or the list's
        cursor value (best case).
    k:
        Number of items to return.
    missing_low:
        Worst-case value assumed for a component that has not been seen yet
        (0 for non-negative scores).
    """

    def __init__(self, aggregation: AggregationFn, k: int, missing_low: float = 0.0) -> None:
        if k <= 0:
            raise AlgorithmError("k must be positive")
        self.aggregation = aggregation
        self.k = k
        self.missing_low = missing_low

    def run(self, lists: Sequence[SortedAccessList[Hashable]]) -> TopKResult:
        """Execute NRA until the top-k is certain or every list is exhausted."""
        if not lists:
            raise AlgorithmError("NRA requires at least one input list")
        counter = lists[0].counter
        for access_list in lists:
            if access_list.counter is not counter:
                raise AlgorithmError("all lists must share one AccessCounter")

        n_lists = len(lists)
        seen: dict[Hashable, dict[int, float]] = {}
        rounds = 0

        while True:
            progressed = False
            for position, access_list in enumerate(lists):
                entry = access_list.sequential_access()
                if entry is None:
                    continue
                progressed = True
                seen.setdefault(entry.key, {})[position] = entry.score
            rounds += 1
            exhausted = not progressed or all(access_list.exhausted for access_list in lists)

            lower, upper = self._bounds(seen, lists, n_lists)
            if len(seen) >= self.k:
                ranked = sorted(seen, key=lambda key: (-lower[key], repr(key)))
                kth_lower = lower[ranked[self.k - 1]]
                cursors = [access_list.cursor_score for access_list in lists]
                threshold = self.aggregation(cursors)
                others_beatable = any(
                    upper[key] > kth_lower + 1e-12 for key in ranked[self.k :]
                )
                unseen_beatable = threshold > kth_lower + 1e-12 and not all(
                    access_list.exhausted for access_list in lists
                )
                if not others_beatable and not unseen_beatable:
                    top = tuple(ranked[: self.k])
                    return self._result(top, lower, upper, counter, lists, rounds)
            if exhausted:
                ranked = sorted(seen, key=lambda key: (-lower[key], repr(key)))
                top = tuple(ranked[: self.k])
                return self._result(top, lower, upper, counter, lists, rounds)

    # -- helpers --------------------------------------------------------------------------------

    def _bounds(
        self,
        seen: Mapping[Hashable, Mapping[int, float]],
        lists: Sequence[SortedAccessList[Hashable]],
        n_lists: int,
    ) -> tuple[dict[Hashable, float], dict[Hashable, float]]:
        cursors = [access_list.cursor_score for access_list in lists]
        lower: dict[Hashable, float] = {}
        upper: dict[Hashable, float] = {}
        for key, components in seen.items():
            worst = [components.get(position, self.missing_low) for position in range(n_lists)]
            best = [components.get(position, cursors[position]) for position in range(n_lists)]
            lower[key] = self.aggregation(worst)
            upper[key] = self.aggregation(best)
        return lower, upper

    def _result(
        self,
        top: tuple[Hashable, ...],
        lower: Mapping[Hashable, float],
        upper: Mapping[Hashable, float],
        counter: AccessCounter,
        lists: Sequence[SortedAccessList[Hashable]],
        rounds: int,
    ) -> TopKResult:
        return TopKResult(
            items=top,
            lower_bounds={key: lower[key] for key in top},
            upper_bounds={key: upper[key] for key in top},
            sequential_accesses=counter.sequential,
            random_accesses=counter.random,
            total_entries=total_entries(lists),
            rounds=rounds,
        )
