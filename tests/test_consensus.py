"""Tests for repro.core.consensus (AP / MO / PD and their bounds)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bounds import Interval
from repro.core.consensus import (
    AVERAGE_PREFERENCE,
    LEAST_MISERY,
    PAIRWISE_DISAGREEMENT,
    PD_V1,
    PD_V2,
    ConsensusFunction,
    average_preference,
    least_misery_preference,
    make_consensus,
    pairwise_disagreement,
    variance_disagreement,
)
from repro.exceptions import ConsensusError


class TestAggregations:
    def test_average_preference(self):
        assert average_preference([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_least_misery(self):
        assert least_misery_preference([4.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConsensusError):
            average_preference([])
        with pytest.raises(ConsensusError):
            least_misery_preference([])
        with pytest.raises(ConsensusError):
            pairwise_disagreement([])
        with pytest.raises(ConsensusError):
            variance_disagreement([])

    def test_pairwise_disagreement_formula(self):
        # pairs: |1-3|=2, |1-5|=4, |3-5|=2 -> 2/(3*2) * 8 = 8/3
        assert pairwise_disagreement([1.0, 3.0, 5.0]) == pytest.approx(8 / 3)

    def test_pairwise_disagreement_singleton_is_zero(self):
        assert pairwise_disagreement([2.5]) == 0.0

    def test_variance_disagreement(self):
        assert variance_disagreement([1.0, 3.0, 5.0]) == pytest.approx(8 / 3)
        assert variance_disagreement([2.0, 2.0]) == 0.0

    def test_identical_preferences_have_zero_disagreement(self):
        assert pairwise_disagreement([0.7, 0.7, 0.7]) == pytest.approx(0.0)
        assert variance_disagreement([0.7, 0.7, 0.7]) == pytest.approx(0.0)


class TestConsensusFunction:
    def test_named_constants(self):
        assert AVERAGE_PREFERENCE.name == "AP" and AVERAGE_PREFERENCE.w2 == 0.0
        assert LEAST_MISERY.aggregation == "least-misery"
        assert PAIRWISE_DISAGREEMENT.disagreement == "pairwise"
        assert PD_V1.w1 == 0.8 and PD_V2.w1 == 0.2

    def test_invalid_configurations(self):
        with pytest.raises(ConsensusError):
            ConsensusFunction(name="bad", aggregation="median")
        with pytest.raises(ConsensusError):
            ConsensusFunction(name="bad", disagreement="entropy")
        with pytest.raises(ConsensusError):
            ConsensusFunction(name="bad", w1=0.6, w2=0.6)
        with pytest.raises(ConsensusError):
            ConsensusFunction(name="bad", disagreement="none", w1=0.5, w2=0.5)

    def test_ap_score_is_normalised_mean(self):
        prefs = {1: 4.0, 2: 2.0, 3: 3.0}
        assert AVERAGE_PREFERENCE.score(prefs, scale=5.0) == pytest.approx(3.0 / 5.0)

    def test_mo_score_is_normalised_minimum(self):
        assert LEAST_MISERY.score([4.0, 2.0, 3.0], scale=5.0) == pytest.approx(0.4)

    def test_pd_score_combines_preference_and_disagreement(self):
        prefs = [5.0, 1.0]
        normalised = [1.0, 0.2]
        expected = 0.5 * (1.2 / 2) + 0.5 * (1.0 - 0.8)
        assert PAIRWISE_DISAGREEMENT.score(prefs, scale=5.0) == pytest.approx(expected)

    def test_pd_rewards_agreement(self):
        """All else equal, an item with higher agreement gets a higher PD score."""
        agreeing = PAIRWISE_DISAGREEMENT.score([3.0, 3.0], scale=5.0)
        disagreeing = PAIRWISE_DISAGREEMENT.score([5.0, 1.0], scale=5.0)
        assert agreeing > disagreeing

    def test_score_rejects_bad_inputs(self):
        with pytest.raises(ConsensusError):
            AVERAGE_PREFERENCE.score([], scale=5.0)
        with pytest.raises(ConsensusError):
            AVERAGE_PREFERENCE.score([1.0], scale=0.0)

    def test_make_consensus_names(self):
        assert make_consensus("AP") is AVERAGE_PREFERENCE
        assert make_consensus("ar") is AVERAGE_PREFERENCE  # the paper's Figure 8 label
        assert make_consensus("MO") is LEAST_MISERY
        assert make_consensus("pd v1") is PD_V1
        assert make_consensus("PD_V2") is PD_V2

    def test_make_consensus_with_weight_override(self):
        custom = make_consensus("PD", w1=0.7)
        assert custom.w1 == pytest.approx(0.7) and custom.w2 == pytest.approx(0.3)

    def test_make_consensus_adds_disagreement_to_ap(self):
        custom = make_consensus("AP", disagreement="variance", w1=0.6)
        assert custom.disagreement == "variance"
        assert custom.w2 == pytest.approx(0.4)

    def test_make_consensus_unknown_name(self):
        with pytest.raises(ConsensusError):
            make_consensus("median")


class TestMonotonicity:
    """Lemma 1: the consensus functions are monotone in member preferences."""

    @given(
        prefs=st.lists(st.floats(min_value=0, max_value=5), min_size=2, max_size=6),
        bump_index=st.integers(min_value=0, max_value=5),
        bump=st.floats(min_value=0.01, max_value=2.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_ap_and_mo_monotone(self, prefs, bump_index, bump):
        bump_index %= len(prefs)
        bumped = list(prefs)
        bumped[bump_index] = min(5.0, bumped[bump_index] + bump)
        for consensus in (AVERAGE_PREFERENCE, LEAST_MISERY):
            assert consensus.score(bumped, scale=5.0) >= consensus.score(prefs, scale=5.0) - 1e-12

    @given(
        prefs=st.lists(st.floats(min_value=0, max_value=5), min_size=2, max_size=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_pd_scores_bounded(self, prefs):
        for consensus in (PAIRWISE_DISAGREEMENT, PD_V1, PD_V2):
            score = consensus.score(prefs, scale=5.0)
            assert -0.5 <= score <= 1.0 + 1e-9


class TestScoreBounds:
    def test_exact_intervals_give_exact_score(self):
        prefs = [3.0, 4.0, 2.0]
        intervals = [Interval.exact(value) for value in prefs]
        for consensus in (AVERAGE_PREFERENCE, LEAST_MISERY, PAIRWISE_DISAGREEMENT, PD_V2):
            bounds = consensus.score_bounds(intervals, scale=5.0)
            exact = consensus.score(prefs, scale=5.0)
            assert bounds.low == pytest.approx(exact, abs=1e-9)
            assert bounds.high == pytest.approx(exact, abs=1e-9)

    def test_bounds_bracket_exact_scores(self):
        intervals = [Interval(1.0, 4.0), Interval(2.0, 2.0), Interval(0.0, 5.0)]
        candidates = [
            [1.0, 2.0, 0.0],
            [4.0, 2.0, 5.0],
            [2.5, 2.0, 3.0],
            [1.0, 2.0, 5.0],
        ]
        for consensus in (AVERAGE_PREFERENCE, LEAST_MISERY, PAIRWISE_DISAGREEMENT, PD_V1, PD_V2):
            bounds = consensus.score_bounds(intervals, scale=5.0)
            for prefs in candidates:
                exact = consensus.score(prefs, scale=5.0)
                assert bounds.low - 1e-9 <= exact <= bounds.high + 1e-9

    def test_bounds_reject_bad_inputs(self):
        with pytest.raises(ConsensusError):
            AVERAGE_PREFERENCE.score_bounds([], scale=5.0)
        with pytest.raises(ConsensusError):
            AVERAGE_PREFERENCE.score_bounds([Interval(0, 1)], scale=-1.0)

    @given(
        data=st.lists(
            st.tuples(st.floats(min_value=0, max_value=5), st.floats(min_value=0, max_value=5)),
            min_size=2,
            max_size=5,
        ),
        picks=st.lists(st.floats(min_value=0, max_value=1), min_size=2, max_size=5),
    )
    @settings(max_examples=80, deadline=None)
    def test_bounds_are_sound_for_random_boxes(self, data, picks):
        """Any completion inside the box scores within the computed bounds."""
        intervals = [Interval.between(low, high) for low, high in data]
        while len(picks) < len(intervals):
            picks = picks + picks
        prefs = [
            interval.low + fraction * (interval.high - interval.low)
            for interval, fraction in zip(intervals, picks)
        ]
        for consensus in (AVERAGE_PREFERENCE, LEAST_MISERY, PAIRWISE_DISAGREEMENT, PD_V2):
            bounds = consensus.score_bounds(intervals, scale=5.0)
            exact = consensus.score(prefs, scale=5.0)
            assert bounds.low - 1e-9 <= exact <= bounds.high + 1e-9
