"""Tests for repro.core.affinity (temporal affinity models)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.affinity import (
    ComputedAffinities,
    ContinuousAffinityModel,
    DiscreteAffinityModel,
    ExplicitAffinityModel,
    NoAffinityModel,
    TimeAgnosticAffinityModel,
    build_affinity_model,
    clamp01,
    combine_continuous,
    combine_discrete,
    pair_key,
)
from repro.core.timeline import uniform_timeline
from repro.exceptions import AffinityError


class TestHelpers:
    def test_pair_key_is_canonical(self):
        assert pair_key(3, 1) == (1, 3)
        assert pair_key(1, 3) == (1, 3)

    def test_pair_key_rejects_self_pair(self):
        with pytest.raises(AffinityError):
            pair_key(2, 2)

    def test_clamp01(self):
        assert clamp01(-0.5) == 0.0
        assert clamp01(0.25) == 0.25
        assert clamp01(1.7) == 1.0

    def test_combine_discrete_matches_equation_one(self):
        # drift = (0.6 - 0.2) + (0.2 - 0.4) = 0.2, Gamma = 2 periods -> aff_V = 0.1
        value = combine_discrete(0.3, [0.6, 0.2], [0.2, 0.4])
        assert value == pytest.approx(0.4)

    def test_combine_discrete_without_periods_is_static(self):
        assert combine_discrete(0.7, [], []) == pytest.approx(0.7)

    def test_combine_continuous_growth_and_decay(self):
        growth = combine_continuous(0.3, [0.9], [0.1])
        decay = combine_continuous(0.3, [0.1], [0.9])
        assert growth == pytest.approx(min(1.0, 0.3 * math.exp(0.8)))
        assert decay == pytest.approx(0.3 * math.exp(-0.8))

    def test_combine_continuous_zero_static_stays_zero(self):
        assert combine_continuous(0.0, [1.0, 1.0], [0.0, 0.0]) == 0.0

    @given(
        static=st.floats(min_value=0, max_value=1),
        periodic=st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=6),
        averages=st.lists(st.floats(min_value=0, max_value=1), min_size=6, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_combinations_stay_normalised(self, static, periodic, averages):
        averages = averages[: len(periodic)]
        for combine in (combine_discrete, combine_continuous):
            value = combine(static, periodic, averages)
            assert 0.0 <= value <= 1.0

    @given(
        static=st.floats(min_value=0, max_value=1),
        low=st.lists(st.floats(min_value=0, max_value=0.5), min_size=2, max_size=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_combinations_are_monotone_in_periodic_values(self, static, low):
        """Raising any periodic affinity never lowers the combined affinity (Lemma 1)."""
        averages = [0.3] * len(low)
        high = [value + 0.5 for value in low]
        for combine in (combine_discrete, combine_continuous):
            assert combine(static, high, averages) >= combine(static, low, averages) - 1e-12


class TestNoAffinityModel:
    def test_always_zero(self):
        model = NoAffinityModel()
        assert model.affinity(1, 2) == 0.0
        assert model.mean_pairwise([1, 2, 3]) == 0.0

    def test_rejects_self_pair(self):
        with pytest.raises(AffinityError):
            NoAffinityModel().affinity(4, 4)


class TestExplicitAffinityModel:
    def test_static_only(self):
        model = ExplicitAffinityModel({(1, 2): 0.8, (2, 3): 0.3})
        assert model.affinity(2, 1) == pytest.approx(0.8)
        assert model.affinity(1, 3) == 0.0

    def test_periodic_requires_timeline(self):
        with pytest.raises(AffinityError):
            ExplicitAffinityModel({}, periodic={None: {}})

    def test_periodic_average_up_to_period(self, short_timeline):
        model = ExplicitAffinityModel(
            {(1, 2): 0.2},
            periodic={
                short_timeline[0]: {(1, 2): 0.4},
                short_timeline[1]: {(1, 2): 0.2},
            },
            timeline=short_timeline,
        )
        assert model.affinity(1, 2, short_timeline[0]) == pytest.approx(0.6)
        assert model.affinity(1, 2, short_timeline[1]) == pytest.approx(0.2 + 0.3)

    def test_pairwise_helper(self):
        model = ExplicitAffinityModel({(1, 2): 0.5, (1, 3): 0.1, (2, 3): 0.9})
        values = model.pairwise([1, 2, 3])
        assert values == {(1, 2): 0.5, (1, 3): 0.1, (2, 3): 0.9}
        assert model.mean_pairwise([1, 2, 3]) == pytest.approx(0.5)


class TestComputedAffinities:
    @pytest.fixture()
    def computed(self, tiny_social, short_timeline):
        return ComputedAffinities(tiny_social, short_timeline)

    def test_requires_two_users(self, tiny_social, short_timeline):
        with pytest.raises(AffinityError):
            ComputedAffinities(tiny_social, short_timeline, users=[1])

    def test_static_normalisation_by_max_pair(self, computed):
        """The paper normalises static affinity by the maximum pairwise value."""
        raw_max = max(
            computed.static_raw(a, b) for a, b in [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]
        )
        assert raw_max > 0
        values = [
            computed.static_normalized(a, b)
            for a, b in [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]
        ]
        assert max(values) == pytest.approx(1.0)
        assert all(0.0 <= value <= 1.0 for value in values)

    def test_periodic_raw_counts_common_category_likes(self, computed, short_timeline):
        assert computed.periodic_raw(1, 2, short_timeline[0]) == 2.0
        assert computed.periodic_raw(1, 2, short_timeline[2]) == 0.0
        assert computed.periodic_raw(3, 4, short_timeline[2]) == 1.0

    def test_population_average(self, computed, short_timeline):
        # Period 0: only the (1,2) pair shares 2 categories among 6 pairs.
        assert computed.population_average(short_timeline[0]) == pytest.approx(2.0 / 6.0)

    def test_unknown_period_rejected(self, computed):
        from repro.core.timeline import Period

        with pytest.raises(AffinityError):
            computed.periodic_raw(1, 2, Period(5_000, 6_000))
        with pytest.raises(AffinityError):
            computed.population_average(Period(5_000, 6_000))

    def test_drift_sign_tracks_population(self, computed, short_timeline):
        """Pairs liking more than average drift positively, others negatively."""
        assert computed.drift_sum(1, 2, short_timeline[0]) > 0
        assert computed.drift_sum(1, 4, short_timeline[0]) < 0

    def test_dynamic_discrete_normalises_by_period_count(self, computed, short_timeline):
        drift = computed.drift_sum(1, 2, short_timeline[1])
        assert computed.dynamic_discrete(1, 2, short_timeline[1]) == pytest.approx(drift / 2)

    def test_dynamic_continuous_rate_uses_elapsed_time(self, computed, short_timeline):
        drift = computed.drift_sum(1, 2, short_timeline[1])
        assert computed.dynamic_continuous_rate(1, 2, short_timeline[1]) == pytest.approx(drift / 199)


class TestModels:
    @pytest.fixture()
    def computed(self, tiny_social, short_timeline):
        return ComputedAffinities(tiny_social, short_timeline)

    def test_discrete_combines_static_and_drift(self, computed, short_timeline):
        model = DiscreteAffinityModel(computed)
        period = short_timeline[0]
        expected = clamp01(
            computed.static_normalized(1, 2) + computed.dynamic_discrete(1, 2, period)
        )
        assert model.affinity(1, 2, period) == pytest.approx(expected)

    def test_discrete_without_period_is_static(self, computed):
        model = DiscreteAffinityModel(computed)
        assert model.affinity(1, 2) == pytest.approx(computed.static_normalized(1, 2))

    def test_continuous_grows_with_positive_drift(self, computed, short_timeline):
        model = ContinuousAffinityModel(computed)
        period = short_timeline[0]
        static = computed.static_normalized(1, 2)
        assert model.affinity(1, 2, period) >= static  # (1,2) drift positively in p0

    def test_continuous_decays_with_negative_drift(self, computed, short_timeline):
        model = ContinuousAffinityModel(computed)
        static = computed.static_normalized(1, 4)
        if static > 0:
            assert model.affinity(1, 4, short_timeline[0]) < static

    def test_time_agnostic_ignores_period(self, computed, short_timeline):
        model = TimeAgnosticAffinityModel(computed)
        assert model.affinity(1, 2, short_timeline[0]) == model.affinity(1, 2, short_timeline[2])

    def test_all_models_symmetric_and_normalised(self, computed, short_timeline):
        models = [
            DiscreteAffinityModel(computed),
            ContinuousAffinityModel(computed),
            TimeAgnosticAffinityModel(computed),
        ]
        pairs = [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]
        for model in models:
            for period in list(short_timeline) + [None]:
                for left, right in pairs:
                    value = model.affinity(left, right, period)
                    assert value == pytest.approx(model.affinity(right, left, period))
                    assert 0.0 <= value <= 1.0

    def test_factory(self, tiny_social, short_timeline):
        for name, cls in [
            ("discrete", DiscreteAffinityModel),
            ("continuous", ContinuousAffinityModel),
            ("time-agnostic", TimeAgnosticAffinityModel),
            ("none", NoAffinityModel),
        ]:
            model = build_affinity_model(name, tiny_social, short_timeline)
            assert isinstance(model, cls)

    def test_factory_rejects_unknown_model(self, tiny_social, short_timeline):
        with pytest.raises(AffinityError):
            build_affinity_model("quantum", tiny_social, short_timeline)
