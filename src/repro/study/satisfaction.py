"""Satisfaction oracle replacing the paper's human judges.

The quality experiments of Section 4.1 ask real Facebook users how satisfied
they would be watching the recommended movies *with the other group members*
(independent evaluation, 0-5 scale) or which of two recommendation lists
they prefer (comparative evaluation).  Since human participants are not
available offline, the reproduction substitutes a **satisfaction oracle**: a
ground-truth utility per (user, item, group, period) built from information
the recommenders do not see:

* the user's *held-out true rating* of the item (or their circle's taste when
  the user never rated it),
* the affinity-weighted true ratings of the other group members during the
  query period — i.e. the social-influence component the paper's premise is
  about ("a user appreciates recommendations differently in the company of
  different people and at different times"),
* zero-mean observation noise.

A recommendation method scores well exactly when it anticipates both personal
taste and company, which is what the paper's judges rewarded; the orderings
between methods (affinity-aware vs agnostic, temporal vs static, AP/MO/PD)
are therefore reproducible even though absolute percentages differ.  The
substitution is documented in DESIGN.md §5.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.affinity import AffinityModel
from repro.core.timeline import Period
from repro.data.ratings import MAX_RATING, MIN_RATING, RatingsDataset
from repro.exceptions import ConfigurationError, GroupError


@dataclass(frozen=True)
class OracleConfig:
    """Tuning knobs of the satisfaction oracle."""

    #: Relative weight of the user's own taste vs the group-influence term.
    personal_weight: float = 0.6
    #: Relative weight of the affinity-weighted company term.
    social_weight: float = 0.4
    #: Standard deviation of the observation noise (rating points).
    noise: float = 0.25
    #: Random seed for the noise.
    seed: int = 97

    def __post_init__(self) -> None:
        if self.personal_weight < 0 or self.social_weight < 0:
            raise ConfigurationError("oracle weights must be non-negative")
        if self.personal_weight + self.social_weight <= 0:
            raise ConfigurationError("at least one oracle weight must be positive")
        if self.noise < 0:
            raise ConfigurationError("noise must be non-negative")


class SatisfactionOracle:
    """Ground-truth utility of recommending an item to a user inside a group.

    Parameters
    ----------
    true_ratings:
        The participants' *true* ratings (the full study ratings, including
        anything held out from the recommender).
    affinity:
        The ground-truth affinity model used to weigh the company effect
        (typically the discrete temporal model over the real social data).
    config:
        Oracle weights and noise.
    """

    def __init__(
        self,
        true_ratings: RatingsDataset,
        affinity: AffinityModel,
        config: OracleConfig | None = None,
    ) -> None:
        self.true_ratings = true_ratings
        self.affinity = affinity
        self.config = config or OracleConfig()
        self._rng = random.Random(self.config.seed)
        self._mean = (
            sum(r.value for r in true_ratings) / len(true_ratings) if len(true_ratings) else 3.0
        )

    # -- ground truth ---------------------------------------------------------------------

    def true_rating(self, user_id: int, item_id: int) -> float:
        """The user's true rating, falling back to the item mean then the global mean."""
        if self.true_ratings.has_user(user_id):
            value = self.true_ratings.rating_value(user_id, item_id)
            if value is not None:
                return value
        if self.true_ratings.has_item(item_id):
            return self.true_ratings.item_mean(item_id)
        return self._mean

    def utility(
        self,
        user_id: int,
        item_id: int,
        group: Sequence[int],
        period: Period | None = None,
    ) -> float:
        """Ground-truth satisfaction (1-5 scale) of ``user_id`` for ``item_id`` in ``group``."""
        if user_id not in group:
            raise GroupError(f"user {user_id} is not a member of the group")
        personal = self.true_rating(user_id, item_id)
        others = [other for other in group if other != user_id]
        if others:
            weights = [self.affinity.affinity(user_id, other, period) for other in others]
            ratings = [self.true_rating(other, item_id) for other in others]
            total_weight = sum(weights)
            if total_weight > 0:
                social = sum(w * r for w, r in zip(weights, ratings)) / total_weight
            else:
                social = sum(ratings) / len(ratings)
        else:
            social = personal
        config = self.config
        weight_sum = config.personal_weight + config.social_weight
        value = (config.personal_weight * personal + config.social_weight * social) / weight_sum
        value += self._rng.gauss(0.0, config.noise)
        return float(min(MAX_RATING, max(MIN_RATING, value)))

    # -- list-level judgements -----------------------------------------------------------------

    def list_utility(
        self,
        user_id: int,
        items: Sequence[int],
        group: Sequence[int],
        period: Period | None = None,
    ) -> float:
        """Average utility of a recommendation list for one member."""
        if not items:
            raise ConfigurationError("cannot judge an empty recommendation list")
        return sum(self.utility(user_id, item, group, period) for item in items) / len(items)

    def group_list_utility(
        self,
        items: Sequence[int],
        group: Sequence[int],
        period: Period | None = None,
    ) -> float:
        """Average utility of a recommendation list over all group members."""
        if not group:
            raise GroupError("the group is empty")
        return sum(self.list_utility(user, items, group, period) for user in group) / len(group)

    def satisfaction_score(
        self,
        items: Sequence[int],
        group: Sequence[int],
        period: Period | None = None,
    ) -> float:
        """The independent-evaluation score: mean utility mapped onto 0-5."""
        return self.group_list_utility(items, group, period)

    def satisfaction_percent(
        self,
        items: Sequence[int],
        group: Sequence[int],
        period: Period | None = None,
    ) -> float:
        """The paper's reported percentage: ``score / 5 * 100``."""
        return 100.0 * self.satisfaction_score(items, group, period) / MAX_RATING

    def prefers(
        self,
        first: Sequence[int],
        second: Sequence[int],
        group: Sequence[int],
        period: Period | None = None,
    ) -> bool:
        """Comparative evaluation: does the group prefer ``first`` over ``second``?

        Mirrors the forced-choice protocol (closed-world assumption: exactly
        one list is chosen); ties are broken towards ``second`` so that a
        method must strictly win to be counted.
        """
        return self.group_list_utility(first, group, period) > self.group_list_utility(
            second, group, period
        )

    def member_prefers(
        self,
        user_id: int,
        first: Sequence[int],
        second: Sequence[int],
        group: Sequence[int],
        period: Period | None = None,
    ) -> bool:
        """Per-member forced choice between two lists."""
        return self.list_utility(user_id, first, group, period) > self.list_utility(
            user_id, second, group, period
        )
