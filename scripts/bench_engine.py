"""Measure the GRECA engine and append the numbers to ``BENCH_engine.json``.

Run from the repository root::

    PYTHONPATH=src python scripts/bench_engine.py --label columnar-after

Four measurements are taken:

* **end-to-end** — GRECA (list build + algorithm + result assembly) over the
  default :class:`ScalabilityConfig` substrate: the paper's 3,900-item
  catalogue, 8 random groups of 6, AP consensus, ``k = 10``.  Indexes are
  pre-built so the number isolates the engine, not dataset generation.
* **baselines** — ``NaiveFullScan`` and ``ThresholdAlgorithmBaseline`` over
  the first default group at the same 3,900-item point (the comparison
  pipeline the paper's %SA metric is measured against).
* **figure suite** — wall time of the Figure 5-8 scalability drivers over one
  shared substrate (the workload that pays per-(group, period) index
  construction).
* **micro** — per-entry ``sequential_access`` vs batched ``sequential_block``
  over a 100,000-entry preference list (the latter is skipped gracefully on
  revisions that predate the batched API).

Each invocation *appends* one record to ``BENCH_engine.json`` so the perf
trajectory accumulates across PRs; the access-count checksum in the record
doubles as a guard that a faster engine still performs identical work.

``--shipment`` records the factory-shipment point instead: pickle-by-value
versus zero-copy shared-memory payload bytes (and wall-clock for the
process and persistent backends) over the figure-6 sweep of the default
substrate — the measurement behind the ≥ 10× payload-shrink acceptance bar
of the shm path.

``--storage`` records the storage-backend point instead: the same figure-6
sweep dispatched over ``/dev/shm`` segments versus mmap spool files —
descriptor payload bytes and dispatch wall-clock per backend, with serial
equivalence enforced before anything is written (``make
bench-record-storage``).

``--kernel`` records the round-kernel point instead: the reference tier
versus the batched fused tier (and the njit tier when the ``kernels`` extra
is installed) over the default end-to-end workload — wall-clock, per-round
timing and the fused speedup, with serial equivalence enforced before
anything is written (``make bench-record-kernel``).

``--paper-scale`` records a different point instead: the full MovieLens-1M
substrate (6,040 users × 3,952 movies × 1,000,209 synthetic ratings) with
every default group evaluated at every query period, serial versus the
sharded process-worker path (``make bench-record-paper``).  The record keeps
the host's usable-CPU count alongside the speedup: process sharding can only
beat serial when the host actually grants cores, so a single-CPU container
measures shipment/merge overhead (speedup < 1) while a ≥ 4-core host is
where the ≥ 1.5× expectation at 4 workers applies.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.core.consensus import make_consensus  # noqa: E402
from repro.core.greca import Greca  # noqa: E402
from repro.core.lists import KIND_PREFERENCE, AccessCounter, SortedAccessList  # noqa: E402
from repro.experiments.scalability import ScalabilityConfig, ScalabilityEnvironment  # noqa: E402

MICRO_ENTRIES = 100_000


def bench_greca_end_to_end(repeats: int = 3) -> dict[str, object]:
    """Best-of-``repeats`` wall time of GRECA over the default scalability point."""
    env = ScalabilityEnvironment(ScalabilityConfig())
    consensus = make_consensus(env.config.consensus)
    indexes = env.build_default_indexes()

    best = float("inf")
    sa_checksum = 0
    percent_sa = []
    for _ in range(repeats):
        start = time.perf_counter()
        results = [Greca(consensus, k=env.config.k).run(index) for index in indexes]
        best = min(best, time.perf_counter() - start)
        sa_checksum = sum(result.sequential_accesses for result in results)
        percent_sa = [round(result.percent_sequential_accesses, 3) for result in results]
    return {
        "n_groups": len(indexes),
        "n_items": env.config.n_items,
        "k": env.config.k,
        "consensus": env.config.consensus,
        "total_seconds": round(best, 4),
        "seconds_per_run": round(best / len(indexes), 4),
        "sa_checksum": sa_checksum,
        "percent_sa": percent_sa,
    }


def bench_baselines(repeats: int = 3) -> dict[str, object]:
    """Best-of-``repeats`` wall time of the two baselines over one default group."""
    from repro.core.baseline import NaiveFullScan, ThresholdAlgorithmBaseline  # noqa: E402

    env = ScalabilityEnvironment(ScalabilityConfig())
    consensus = make_consensus(env.config.consensus)
    index = env.build_default_indexes()[0]

    record: dict[str, object] = {"n_items": env.config.n_items, "k": env.config.k}
    for name, algorithm in (
        ("naive", NaiveFullScan(consensus, k=env.config.k)),
        ("ta_baseline", ThresholdAlgorithmBaseline(consensus, k=env.config.k)),
    ):
        best = float("inf")
        accesses = 0
        for _ in range(repeats):
            start = time.perf_counter()
            result = algorithm.run(index)
            best = min(best, time.perf_counter() - start)
            accesses = result.sequential_accesses + result.random_accesses
        record[f"{name}_seconds"] = round(best, 4)
        record[f"{name}_accesses"] = accesses
    return record


def bench_figure_suite() -> dict[str, object]:
    """One pass over the Figure 5-8 drivers on a shared scalability substrate."""
    from repro.experiments import figure5, figure6, figure7, figure8  # noqa: E402

    env = ScalabilityEnvironment(ScalabilityConfig())
    timings: dict[str, object] = {}
    total = 0.0
    for name, driver in (
        ("figure5", figure5),
        ("figure6", figure6),
        ("figure7", figure7),
        ("figure8", figure8),
    ):
        start = time.perf_counter()
        driver.run(environment=env)
        elapsed = time.perf_counter() - start
        timings[f"{name}_seconds"] = round(elapsed, 4)
        total += elapsed
    timings["total_seconds"] = round(total, 4)
    return timings


def bench_micro_access() -> dict[str, object]:
    """Per-entry vs block sequential access over one large preference list."""

    def make_list() -> SortedAccessList:
        entries = ((item, float((item * 2_654_435_761) % 1_000_003)) for item in range(MICRO_ENTRIES))
        return SortedAccessList("PL(bench)", KIND_PREFERENCE, entries, AccessCounter())

    access_list = make_list()
    start = time.perf_counter()
    while access_list.sequential_access() is not None:
        pass
    per_entry = time.perf_counter() - start
    assert access_list.counter.sequential == MICRO_ENTRIES

    record: dict[str, object] = {
        "n_entries": MICRO_ENTRIES,
        "per_entry_seconds": round(per_entry, 4),
    }
    if hasattr(access_list, "sequential_block"):
        access_list = make_list()
        start = time.perf_counter()
        read = 0
        while not access_list.exhausted:
            _, scores = access_list.sequential_block(4096)
            read += len(scores)
        block = time.perf_counter() - start
        assert read == MICRO_ENTRIES and access_list.counter.sequential == MICRO_ENTRIES
        record["block_seconds"] = round(block, 4)
        record["block_speedup"] = round(per_entry / block, 1) if block > 0 else None
    else:
        record["block_seconds"] = None
        record["block_speedup"] = None
    return record


def bench_shipment(n_workers: int = 4) -> dict[str, object]:
    """Pickle vs shared-memory shipment: payload bytes, dispatch counts, wall-clock.

    The workload is the figure 6 sweep over the default substrate — every
    default random group evaluated at every query period, so the same
    memoised factories ship to shards again and again, exactly the pattern
    the zero-copy path amortises.  Three payload shapes are measured:

    * **pickle** — factories and affinity dictionaries by value (PR 3);
    * **shm** — factory arrays by descriptor, per-task affinity
      dictionaries still by value (PR 4);
    * **shm+affinity columns** — factories *and* the per-(group, period)
      affinity inputs by descriptor, tasks carrying only a period-prefix
      reference (PR 5).

    Dispatch counts compare the historical one-dispatch-per-sweep-point
    driver loop against the batched single dispatch (every sweep point in
    one group-major task list): total payloads crossing the pool plus how
    many (shard, factory) shipments they contain — batched, each factory
    ships once per shard it appears in.  Wall-clock is recorded for the
    process backend under pickle and shm and for a persistent pool (cold
    first dispatch, warm second).  On hosts granting fewer cores than
    workers the wall-clocks measure overhead, not speedup — ``n_cpus`` is
    recorded so the trajectory stays honest.
    """
    import pickle

    from repro.parallel import (
        PersistentShardExecutor,
        SharedArrayRegistry,
        available_cpus,
        build_payloads,
        evaluate_tasks,
        plan_shards,
    )

    env = ScalabilityEnvironment(ScalabilityConfig())
    groups = env.random_groups()
    periods = list(env.timeline)
    # Group-major order: each group's factory (and affinity columns) lands in
    # as few contiguous shards as possible.
    tasks_dict = [
        env.task_for(group, period=period, columnar=False)
        for group in groups
        for period in periods
    ]
    tasks_columnar = [
        env.task_for(group, period=period)
        for group in groups
        for period in periods
    ]
    factories = {task.group: env.index_factory(task.group) for task in tasks_dict}
    plan = plan_shards(len(tasks_dict), n_workers)

    def payload_bytes(tasks, factory_map) -> int:
        return sum(
            len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
            for payload in build_payloads(plan, tasks, factory_map)
        )

    pickle_bytes = payload_bytes(tasks_dict, factories)
    with SharedArrayRegistry() as registry:
        from dataclasses import replace

        handles = {key: registry.export(factory) for key, factory in factories.items()}
        shm_bytes = payload_bytes(tasks_dict, handles)
        shipped_columnar = [
            replace(task, affinity_ref=registry.export_affinity(task.affinity_ref))
            for task in tasks_columnar
        ]
        shm_affinity_bytes = payload_bytes(shipped_columnar, handles)

    # Dispatch counts: the pre-batching drivers dispatched once per sweep
    # point (here: per period), the batched path once per figure.
    per_point_dispatches = 0
    per_point_factory_shipments = 0
    for period_index in range(len(periods)):
        point_tasks = [
            tasks_dict[group_index * len(periods) + period_index]
            for group_index in range(len(groups))
        ]
        point_payloads = build_payloads(
            plan_shards(len(point_tasks), n_workers), point_tasks, factories
        )
        per_point_dispatches += len(point_payloads)
        per_point_factory_shipments += sum(
            len(payload.factories) for payload in point_payloads
        )
    batched_payloads = build_payloads(plan, tasks_dict, factories)
    batched_dispatches = len(batched_payloads)
    batched_factory_shipments = sum(len(payload.factories) for payload in batched_payloads)

    start = time.perf_counter()
    serial_records = evaluate_tasks(tasks_dict, factories)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    pickle_records = evaluate_tasks(
        tasks_dict, factories, n_shards=n_workers, executor="process", shipment="pickle"
    )
    process_pickle_seconds = time.perf_counter() - start

    start = time.perf_counter()
    shm_records = evaluate_tasks(
        tasks_columnar, factories, n_shards=n_workers, executor="process", shipment="shm"
    )
    process_shm_seconds = time.perf_counter() - start

    with PersistentShardExecutor(n_workers) as pool, SharedArrayRegistry() as registry:
        start = time.perf_counter()
        cold_records = evaluate_tasks(
            tasks_columnar, factories, executor=pool, registry=registry
        )
        persistent_cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        warm_records = evaluate_tasks(
            tasks_columnar, factories, executor=pool, registry=registry
        )
        persistent_warm_seconds = time.perf_counter() - start

    identical = (
        pickle_records == serial_records
        and shm_records == serial_records
        and cold_records == serial_records
        and warm_records == serial_records
    )
    if not identical:  # the record must never hide an equivalence break
        raise SystemExit("shipment-bench records diverged from serial")

    n_cpus = available_cpus()
    record: dict[str, object] = {}
    if n_cpus < n_workers:
        record["note"] = (
            f"host grants {n_cpus} cpu(s) for {n_workers} workers: wall-clocks "
            "measure shipment/merge overhead, not parallel speedup; the >=1.5x "
            "expectation applies on hosts with >= n_workers cores"
        )
    record.update(
        n_tasks=len(tasks_dict),
        n_groups=len(groups),
        n_periods=len(periods),
        n_workers=n_workers,
        n_cpus=n_cpus,
        payload_bytes_pickle=pickle_bytes,
        payload_bytes_shm=shm_bytes,
        payload_bytes_shm_affinity=shm_affinity_bytes,
        payload_shrink=round(pickle_bytes / shm_bytes, 1) if shm_bytes else None,
        affinity_payload_shrink=(
            round(shm_bytes / shm_affinity_bytes, 1) if shm_affinity_bytes else None
        ),
        dispatches_per_point=per_point_dispatches,
        dispatches_batched=batched_dispatches,
        factory_shipments_per_point=per_point_factory_shipments,
        factory_shipments_batched=batched_factory_shipments,
        serial_seconds=round(serial_seconds, 4),
        process_pickle_seconds=round(process_pickle_seconds, 4),
        process_shm_seconds=round(process_shm_seconds, 4),
        persistent_cold_seconds=round(persistent_cold_seconds, 4),
        persistent_warm_seconds=round(persistent_warm_seconds, 4),
        identical=identical,
    )
    print(json.dumps({"shipment": record}, indent=2))
    return record


def bench_storage(n_workers: int = 4) -> dict[str, object]:
    """Shared-memory vs mmap spool dispatch: payload bytes and wall-clock.

    The workload is the same figure-6 sweep ``bench_shipment`` measures —
    every default random group at every query period, columnar tasks — run
    once per storage backend through real process workers and a persistent
    pool (cold first dispatch, warm second).  Descriptor payloads are
    byte-sized per backend too: an mmap descriptor carries an absolute spool
    path instead of a short shm name, so the delta is visible but small.
    Every backend's records are checked against the serial reference before
    the point is recorded — a faster backend that diverges must never land
    in the trajectory.
    """
    import pickle
    from dataclasses import replace

    from repro.parallel import (
        PersistentShardExecutor,
        SharedArrayRegistry,
        available_cpus,
        build_payloads,
        evaluate_tasks,
        plan_shards,
    )

    env = ScalabilityEnvironment(ScalabilityConfig())
    groups = env.random_groups()
    periods = list(env.timeline)
    tasks = [
        env.task_for(group, period=period) for group in groups for period in periods
    ]
    factories = {task.group: env.index_factory(task.group) for task in tasks}
    plan = plan_shards(len(tasks), n_workers)

    def payload_bytes(shipped_tasks, factory_map) -> int:
        return sum(
            len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
            for payload in build_payloads(plan, shipped_tasks, factory_map)
        )

    start = time.perf_counter()
    serial_records = evaluate_tasks(tasks, factories)
    serial_seconds = time.perf_counter() - start

    n_cpus = available_cpus()
    record: dict[str, object] = {}
    if n_cpus < n_workers:
        record["note"] = (
            f"host grants {n_cpus} cpu(s) for {n_workers} workers: wall-clocks "
            "measure dispatch overhead per backend, not parallel speedup"
        )
    record.update(
        n_tasks=len(tasks),
        n_groups=len(groups),
        n_periods=len(periods),
        n_workers=n_workers,
        n_cpus=n_cpus,
        serial_seconds=round(serial_seconds, 4),
    )

    for storage in ("shm", "mmap"):
        with SharedArrayRegistry(storage=storage) as registry:
            handles = {key: registry.export(factory) for key, factory in factories.items()}
            shipped = [
                replace(task, affinity_ref=registry.export_affinity(task.affinity_ref))
                for task in tasks
            ]
            record[f"payload_bytes_{storage}"] = payload_bytes(shipped, handles)

        start = time.perf_counter()
        process_records = evaluate_tasks(
            tasks, factories, n_shards=n_workers, executor="process", storage=storage
        )
        record[f"process_{storage}_seconds"] = round(time.perf_counter() - start, 4)

        with PersistentShardExecutor(n_workers) as pool, SharedArrayRegistry(
            storage=storage
        ) as registry:
            start = time.perf_counter()
            cold_records = evaluate_tasks(tasks, factories, executor=pool, registry=registry)
            record[f"persistent_cold_{storage}_seconds"] = round(
                time.perf_counter() - start, 4
            )
            start = time.perf_counter()
            warm_records = evaluate_tasks(tasks, factories, executor=pool, registry=registry)
            record[f"persistent_warm_{storage}_seconds"] = round(
                time.perf_counter() - start, 4
            )

        if not (
            process_records == serial_records
            and cold_records == serial_records
            and warm_records == serial_records
        ):  # the record must never hide an equivalence break
            raise SystemExit(f"storage-bench {storage} records diverged from serial")

    record["identical"] = True
    shm_seconds = record["process_shm_seconds"]
    record["mmap_dispatch_overhead"] = (
        round(record["process_mmap_seconds"] / shm_seconds, 3) if shm_seconds else None
    )
    print(json.dumps({"storage": record}, indent=2))
    return record


def bench_kernels(repeats: int = 3) -> dict[str, object]:
    """Reference vs fused (vs numba, when installed) round-kernel wall-clock.

    The workload is the default end-to-end point — the paper's 3,900-item
    catalogue, 8 random groups of 6, AP consensus, ``k = 10``, indexes
    pre-built — run once per registered kernel tier (best of ``repeats``).
    Per-round timing is derived from the summed round counts, which every
    tier must report identically.  Every tier's results are checked against
    the reference kernel before the point is recorded — a faster kernel
    that diverges must never land in the trajectory.  ``n_cpus`` rides
    along: the kernels are single-threaded numpy, but BLAS thread counts
    vary per host.
    """
    from repro.core.kernels import KERNEL_REFERENCE, kernel_names  # noqa: E402
    from repro.parallel import available_cpus  # noqa: E402

    env = ScalabilityEnvironment(ScalabilityConfig())
    consensus = make_consensus(env.config.consensus)
    indexes = env.build_default_indexes()

    def equivalence_facts(results) -> list[tuple]:
        return [
            (
                result.items,
                result.sequential_accesses,
                result.random_accesses,
                result.rounds,
                result.stopping,
            )
            for result in results
        ]

    record: dict[str, object] = {
        "n_groups": len(indexes),
        "n_items": env.config.n_items,
        "k": env.config.k,
        "consensus": env.config.consensus,
        "n_cpus": available_cpus(),
        "kernels": list(kernel_names()),
    }
    reference_facts = None
    reference_seconds = None
    for kernel in kernel_names():
        algorithm = Greca(consensus, k=env.config.k, kernel=kernel)
        best = float("inf")
        results = []
        for _ in range(repeats):
            start = time.perf_counter()
            results = [algorithm.run(index) for index in indexes]
            best = min(best, time.perf_counter() - start)
        facts = equivalence_facts(results)
        if kernel == KERNEL_REFERENCE:
            reference_facts = facts
            reference_seconds = best
        elif facts != reference_facts:
            # The record must never hide an equivalence break.
            raise SystemExit(f"kernel-bench {kernel!r} records diverged from reference")
        total_rounds = sum(result.rounds for result in results)
        record[f"{kernel}_seconds"] = round(best, 4)
        record[f"{kernel}_rounds"] = total_rounds
        record[f"{kernel}_seconds_per_round"] = (
            round(best / total_rounds, 9) if total_rounds else None
        )
        if kernel != KERNEL_REFERENCE:
            record[f"{kernel}_speedup"] = round(reference_seconds / best, 3) if best else None
    record["identical"] = True
    print(json.dumps({"kernels": record}, indent=2))
    return record


def bench_parallel_paper_scale(n_workers: int = 4) -> dict[str, object]:
    """Serial vs sharded evaluation over the full Table 5-scale substrate."""
    from repro.experiments.scalability import ScalabilityConfig, run_paper_scale

    config = ScalabilityConfig.paper_scale()
    result = run_paper_scale(n_workers=n_workers, config=config)
    print(result.format_summary())
    if not result.identical:  # the record must never hide an equivalence break
        raise SystemExit("paper-scale sharded records diverged from serial")
    record: dict[str, object] = {}
    if result.n_cpus < result.n_workers:
        record["note"] = (
            f"host grants {result.n_cpus} cpu(s) for {result.n_workers} workers: "
            "this point measures shipment/merge overhead, not parallel speedup; "
            "the >=1.5x expectation applies on hosts with >= n_workers cores"
        )
    record.update(
        n_users=config.n_users,
        n_items=config.n_items,
        n_ratings=config.n_ratings,
        n_groups=result.n_groups,
        n_periods=result.n_periods,
        n_tasks=result.n_tasks,
        n_workers=result.n_workers,
        n_cpus=result.n_cpus,
        setup_seconds=round(result.setup_seconds, 4),
        serial_seconds=round(result.serial_seconds, 4),
        sharded_seconds=round(result.sharded_seconds, 4),
        speedup=round(result.speedup, 3),
        sa_checksum=result.sa_checksum,
        mean_percent_sa=round(result.stats.mean_percent_sa, 3),
        identical=result.identical,
    )
    return record


def git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except Exception:  # pragma: no cover - git metadata is best-effort
        return "unknown"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", required=True, help="short tag for this measurement")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best is kept)")
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="record the sharded paper-scale point (full MovieLens-1M substrate, "
        "serial vs process workers) instead of the default engine sections",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker count for the --paper-scale / --shipment runs (default: 4)",
    )
    parser.add_argument(
        "--shipment",
        action="store_true",
        help="record the shipment point (pickle vs shared-memory payload bytes, "
        "dispatch counts and wall-clock over the figure-6 sweep) instead of "
        "the default engine sections",
    )
    parser.add_argument(
        "--storage",
        action="store_true",
        help="record the storage-backend point (shared-memory vs mmap spool "
        "dispatch latency and descriptor payload bytes over the figure-6 "
        "sweep) instead of the default engine sections",
    )
    parser.add_argument(
        "--kernel",
        action="store_true",
        help="record the round-kernel point (reference vs fused — vs numba "
        "when the kernels extra is installed — wall-clock and per-round "
        "timing over the default end-to-end workload, serial equivalence "
        "enforced) instead of the default engine sections",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the record to PATH instead of appending to BENCH_engine.json "
        "(CI uses this to upload the measurement as an artifact without "
        "mutating the committed trajectory)",
    )
    args = parser.parse_args(argv)

    record = {
        "label": args.label,
        "git": git_revision(),
        "python": platform.python_version(),
    }
    if args.paper_scale:
        record["parallel_paper_scale"] = bench_parallel_paper_scale(n_workers=args.workers)
    elif args.shipment:
        record["shipment"] = bench_shipment(n_workers=args.workers)
    elif args.storage:
        record["storage"] = bench_storage(n_workers=args.workers)
    elif args.kernel:
        record["kernels"] = bench_kernels(repeats=args.repeats)
    else:
        record.update(
            greca_end_to_end=bench_greca_end_to_end(repeats=args.repeats),
            baselines=bench_baselines(repeats=args.repeats),
            figure_suite=bench_figure_suite(),
            micro_sequential=bench_micro_access(),
        )

    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
    else:
        target = os.path.join(ROOT, "BENCH_engine.json")
        history = []
        if os.path.exists(target):
            with open(target, "r", encoding="utf-8") as handle:
                history = json.load(handle)
        history.append(record)
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(history, handle, indent=2)
            handle.write("\n")
    print(json.dumps(record, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
