"""GRECA — Group Recommendation with Temporal Affinities (Section 3 of the paper).

GRECA adapts the NRA flavour of Fagin-style threshold algorithms to compute
the top-k itemset for an ad-hoc group under a temporal-affinity-aware
consensus function, using *sequential accesses only* over:

* one preference list ``PL_u`` per group member (items sorted by ``apref``),
* ``n - 1`` static affinity lists (pairs sorted by ``aff_S``), and
* ``n - 1`` periodic affinity lists per time period (pairs sorted by
  ``aff_P``).

It maintains, for every encountered item, lower and upper bounds on its
consensus score and stops as soon as either

* the **threshold condition** holds — the best possible score of any unseen
  item (the global threshold) cannot beat the ``k``-th best lower bound and
  exactly ``k`` items are buffered — or
* the **buffer condition** holds — the ``k``-th best lower bound is no
  smaller than the upper bound of every other buffered item (Theorem 1 shows
  this implies the threshold condition).

The implementation below follows the paper's structure but performs the bound
maintenance in bulk with numpy (the round-robin accesses and their accounting
are exactly per the paper; only the bookkeeping of the subroutines
``ComputeUB`` / ``ComputeLB`` / ``ComputeTh`` is vectorised over items, which
does not change which accesses are made).

The main entry points are :class:`GrecaIndex` (the pre-computed lists for a
group and a query period) and :class:`Greca` (the algorithm itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.affinity import ComputedAffinities, combine_continuous, combine_discrete
from repro.core.buffer import CandidateBuffer
from repro.core.consensus import ConsensusFunction
from repro.core.lists import (
    KIND_PERIODIC_AFFINITY,
    KIND_PREFERENCE,
    KIND_STATIC_AFFINITY,
    AccessCounter,
    SortedAccessList,
    build_affinity_lists,
    build_preference_list,
    total_entries,
)
from repro.core.scoring import consensus_bounds, consensus_scores, default_scale, preference_matrix
from repro.core.timeline import Period, Timeline
from repro.exceptions import AlgorithmError, GroupError

#: Time-model names accepted by :class:`GrecaIndex`.
TIME_MODEL_DISCRETE = "discrete"
TIME_MODEL_CONTINUOUS = "continuous"

#: Stopping reasons reported in :class:`GrecaResult`.
STOP_THRESHOLD = "threshold"
STOP_BUFFER = "buffer"
STOP_EXHAUSTED = "exhausted"


class GrecaIndex:
    """Pre-computed preference and affinity lists for one group and period.

    The index is the data structure described in Section 3.1: absolute
    preference lists for every member, static affinity values for every pair
    and periodic affinity values for every pair and period up to the query
    period, together with the per-period population averages needed by the
    drift computation (Equation 1).

    Parameters
    ----------
    members:
        Group members, in a fixed order.
    aprefs:
        ``{user: {item: apref}}`` absolute preferences.  Every member must
        cover the same item universe (missing entries default to 0).
    static:
        ``{(u, v): aff_S}`` normalised static affinities.
    periodic:
        ``{period_index: {(u, v): aff_P}}`` normalised periodic affinities
        for each period up to (and including) the query period, indexed by
        their chronological position (0 = oldest).
    averages:
        ``{period_index: Avg_aff_P}`` population averages on the same
        normalised scale.
    time_model:
        ``"discrete"`` or ``"continuous"`` — selects how the components are
        combined into the pairwise affinity.
    max_apref:
        Upper bound on absolute preference values (used for the score
        normalisation constant); defaults to the observed maximum.
    """

    def __init__(
        self,
        members: Sequence[int],
        aprefs: Mapping[int, Mapping[int, float]],
        static: Mapping[tuple[int, int], float],
        periodic: Mapping[int, Mapping[tuple[int, int], float]] | None = None,
        averages: Mapping[int, float] | None = None,
        time_model: str = TIME_MODEL_DISCRETE,
        max_apref: float | None = None,
    ) -> None:
        members = list(members)
        if len(members) < 2:
            raise GroupError("GRECA requires a group of at least two members")
        if len(set(members)) != len(members):
            raise GroupError("the group contains duplicate members")
        for member in members:
            if member not in aprefs:
                raise GroupError(f"no absolute preferences supplied for member {member}")
        if time_model not in (TIME_MODEL_DISCRETE, TIME_MODEL_CONTINUOUS):
            raise AlgorithmError(f"unknown time model {time_model!r}")

        self.members: tuple[int, ...] = tuple(members)
        self.time_model = time_model

        item_universe: set[int] = set()
        for member in members:
            item_universe.update(aprefs[member])
        self.items: tuple[int, ...] = tuple(sorted(item_universe))
        if not self.items:
            raise AlgorithmError("the preference lists contain no items")

        self._aprefs: dict[int, dict[int, float]] = {
            member: {item: float(aprefs[member].get(item, 0.0)) for item in self.items}
            for member in members
        }
        for member, prefs in self._aprefs.items():
            for item, value in prefs.items():
                if value < 0:
                    raise AlgorithmError(
                        f"negative absolute preference for user {member}, item {item}"
                    )

        self._static = {self._pair(*pair): float(value) for pair, value in static.items()}
        self._periodic: dict[int, dict[tuple[int, int], float]] = {}
        for period_index, values in (periodic or {}).items():
            self._periodic[int(period_index)] = {
                self._pair(*pair): float(value) for pair, value in values.items()
            }
        self.period_indices: tuple[int, ...] = tuple(sorted(self._periodic))
        self._averages = {int(index): float(value) for index, value in (averages or {}).items()}
        for period_index in self.period_indices:
            self._averages.setdefault(period_index, 0.0)

        observed_max = max(
            (value for prefs in self._aprefs.values() for value in prefs.values()),
            default=0.0,
        )
        self.max_apref = float(max_apref) if max_apref is not None else max(observed_max, 1e-9)
        self.scale = default_scale(self.max_apref, len(self.members))

    # -- constructors --------------------------------------------------------------------

    @classmethod
    def from_computed(
        cls,
        members: Sequence[int],
        aprefs: Mapping[int, Mapping[int, float]],
        computed: ComputedAffinities,
        period: Period,
        time_model: str = TIME_MODEL_DISCRETE,
        max_apref: float | None = None,
    ) -> "GrecaIndex":
        """Build the index from pre-computed social-network affinities.

        The static component is normalised per Section 4.1.2 and the periodic
        components (and their population averages) cover every period of the
        timeline up to ``period``.
        """
        members = list(members)
        static = {}
        for index, left in enumerate(members):
            for right in members[index + 1 :]:
                static[(left, right)] = computed.static_normalized(left, right)
        periodic: dict[int, dict[tuple[int, int], float]] = {}
        averages: dict[int, float] = {}
        for period_index, past in enumerate(computed.timeline.periods_until(period)):
            values = {}
            for index, left in enumerate(members):
                for right in members[index + 1 :]:
                    values[(left, right)] = computed.periodic_normalized(left, right, past)
            periodic[period_index] = values
            averages[period_index] = computed.population_average_normalized(past)
        return cls(
            members=members,
            aprefs=aprefs,
            static=static,
            periodic=periodic,
            averages=averages,
            time_model=time_model,
            max_apref=max_apref,
        )

    # -- helpers --------------------------------------------------------------------------

    @staticmethod
    def _pair(left: int, right: int) -> tuple[int, int]:
        if left == right:
            raise AlgorithmError("affinity pairs must involve two distinct users")
        return (left, right) if left < right else (right, left)

    def pairs(self) -> list[tuple[int, int]]:
        """Every unordered member pair, in member order."""
        result = []
        for index, left in enumerate(self.members):
            for right in self.members[index + 1 :]:
                result.append(self._pair(left, right))
        return result

    def static_value(self, left: int, right: int) -> float:
        """Normalised static affinity of a pair (0 when absent)."""
        return self._static.get(self._pair(left, right), 0.0)

    def periodic_value(self, left: int, right: int, period_index: int) -> float:
        """Normalised periodic affinity of a pair during one period."""
        return self._periodic.get(period_index, {}).get(self._pair(left, right), 0.0)

    def average_value(self, period_index: int) -> float:
        """Population average for one period."""
        return self._averages.get(period_index, 0.0)

    def combine(self, static: float, periodic: Sequence[float]) -> float:
        """Combine component values into a pairwise affinity (model-dependent)."""
        averages = [self._averages.get(index, 0.0) for index in self.period_indices]
        if self.time_model == TIME_MODEL_DISCRETE:
            return combine_discrete(static, list(periodic), averages)
        return combine_continuous(static, list(periodic), averages)

    def affinity(self, left: int, right: int) -> float:
        """The exact combined affinity of a pair at the query period."""
        periodic = [self.periodic_value(left, right, index) for index in self.period_indices]
        return self.combine(self.static_value(left, right), periodic)

    # -- dense views (used by the exact scorers and by GRECA's bound maintenance) ---------

    def apref_matrix(self) -> np.ndarray:
        """``(n_members, n_items)`` matrix of absolute preferences."""
        matrix = np.zeros((len(self.members), len(self.items)))
        for row, member in enumerate(self.members):
            prefs = self._aprefs[member]
            for col, item in enumerate(self.items):
                matrix[row, col] = prefs[item]
        return matrix

    def affinity_matrix(self) -> np.ndarray:
        """``(n_members, n_members)`` exact combined affinity matrix (zero diagonal)."""
        n = len(self.members)
        matrix = np.zeros((n, n))
        for row in range(n):
            for col in range(row + 1, n):
                value = self.affinity(self.members[row], self.members[col])
                matrix[row, col] = value
                matrix[col, row] = value
        return matrix

    def exact_scores(self, consensus: ConsensusFunction) -> dict[int, float]:
        """Exact consensus scores of every item (no access accounting)."""
        prefs = preference_matrix(self.apref_matrix(), self.affinity_matrix())
        scores = consensus_scores(consensus, prefs, self.scale)
        return {item: float(scores[col]) for col, item in enumerate(self.items)}

    # -- list construction ------------------------------------------------------------------

    def build_lists(
        self, counter: AccessCounter
    ) -> tuple[
        list[SortedAccessList[int]],
        list[SortedAccessList[tuple[int, int]]],
        dict[int, list[SortedAccessList[tuple[int, int]]]],
    ]:
        """Materialise the sorted lists GRECA scans (preference, static, periodic)."""
        preference_lists = [
            build_preference_list(member, self._aprefs[member], counter)
            for member in self.members
        ]
        static_lists = build_affinity_lists(
            self.members, self._static, KIND_STATIC_AFFINITY, "affS", counter
        )
        periodic_lists = {
            period_index: build_affinity_lists(
                self.members,
                self._periodic.get(period_index, {}),
                KIND_PERIODIC_AFFINITY,
                f"affV[p{period_index}]",
                counter,
            )
            for period_index in self.period_indices
        }
        return preference_lists, static_lists, periodic_lists

    def total_index_entries(self) -> int:
        """Total number of entries across every list (the naive scan cost)."""
        n = len(self.members)
        n_pairs = n * (n - 1) // 2
        return n * len(self.items) + n_pairs * (1 + len(self.period_indices))


@dataclass(frozen=True)
class GrecaResult:
    """Outcome of one GRECA execution."""

    items: tuple[int, ...]
    bounds: Mapping[int, tuple[float, float]]
    exact_scores: Mapping[int, float]
    sequential_accesses: int
    random_accesses: int
    total_entries: int
    rounds: int
    stopping: str
    consensus: str
    k: int

    @property
    def percent_sequential_accesses(self) -> float:
        """Percentage of list entries read sequentially (the paper's ``%SA``)."""
        if self.total_entries == 0:
            return 0.0
        return 100.0 * self.sequential_accesses / self.total_entries

    @property
    def saveup(self) -> float:
        """Percentage of accesses avoided compared to a full scan."""
        return 100.0 - self.percent_sequential_accesses


class Greca:
    """The GRECA top-k algorithm.

    Parameters
    ----------
    consensus:
        The (monotone) consensus function ``F``.
    k:
        Size of the itemset to recommend.
    check_interval:
        Number of round-robin cycles between two evaluations of the stopping
        conditions.  ``None`` selects an adaptive default that keeps the
        bookkeeping overhead negligible while bounding the overshoot to a
        small fraction of the lists.
    """

    def __init__(
        self,
        consensus: ConsensusFunction,
        k: int = 10,
        check_interval: int | None = None,
    ) -> None:
        if k <= 0:
            raise AlgorithmError("k must be positive")
        if check_interval is not None and check_interval <= 0:
            raise AlgorithmError("check_interval must be positive")
        self.consensus = consensus
        self.k = k
        self.check_interval = check_interval

    # -- public API ---------------------------------------------------------------------------

    def run(self, index: GrecaIndex) -> GrecaResult:
        """Execute GRECA over a pre-built index and return the top-k itemset."""
        counter = AccessCounter()
        preference_lists, static_lists, periodic_lists = index.build_lists(counter)
        all_lists: list[SortedAccessList] = list(preference_lists) + list(static_lists)
        for period_index in index.period_indices:
            all_lists.extend(periodic_lists[period_index])
        total = total_entries(all_lists)

        n_members = len(index.members)
        n_items = len(index.items)
        member_row = {member: row for row, member in enumerate(index.members)}
        item_col = {item: col for col, item in enumerate(index.items)}

        k = min(self.k, n_items)
        check_interval = self.check_interval or max(1, n_items // 200)

        # Partial knowledge gathered from sequential accesses.
        seen_apref = np.full((n_members, n_items), np.nan)
        static_seen: dict[tuple[int, int], float] = {}
        periodic_seen: dict[tuple[int, tuple[int, int]], float] = {}

        # Resolve which member / period each list feeds, by list identity.
        list_member = {id(pl): member for pl, member in zip(preference_lists, index.members)}
        list_period: dict[int, int] = {}
        for period_index in index.period_indices:
            for access_list in periodic_lists[period_index]:
                list_period[id(access_list)] = period_index

        # Map each pair to the list that will eventually deliver it, so that
        # unseen pair components can be bounded by that list's cursor value.
        pair_static_list = self._pair_list_map(index, static_lists)
        pair_periodic_list = {
            period_index: self._pair_list_map(index, periodic_lists[period_index])
            for period_index in index.period_indices
        }

        buffer = CandidateBuffer()
        rounds = 0
        stopping = STOP_EXHAUSTED
        finished = False

        while not finished:
            progressed = False
            for access_list in all_lists:
                entry = access_list.sequential_access()
                if entry is None:
                    continue
                progressed = True
                if access_list.kind == KIND_PREFERENCE:
                    member = list_member[id(access_list)]
                    seen_apref[member_row[member], item_col[entry.key]] = entry.score
                elif access_list.kind == KIND_STATIC_AFFINITY:
                    static_seen[entry.key] = entry.score
                else:
                    periodic_seen[(list_period[id(access_list)], entry.key)] = entry.score
            rounds += 1

            exhausted = not progressed or all(access_list.exhausted for access_list in all_lists)
            if not exhausted and rounds % check_interval != 0:
                continue

            lower, upper, threshold, buffered = self._compute_bounds(
                index,
                preference_lists,
                seen_apref,
                static_seen,
                periodic_seen,
                pair_static_list,
                pair_periodic_list,
            )
            buffer.update_many(
                {
                    index.items[col]: (float(lower[col]), float(upper[col]))
                    for col in np.flatnonzero(buffered)
                }
            )

            decision = self._check_stop(lower, upper, threshold, buffered, k, exhausted)
            if decision is not None:
                stopping = decision
                finished = True
            elif exhausted:
                stopping = STOP_EXHAUSTED
                finished = True

        ranked = buffer.ranked_by_lower_bound()
        top_items = tuple(entry.item for entry in ranked[:k])
        exact = index.exact_scores(self.consensus)
        return GrecaResult(
            items=top_items,
            bounds={entry.item: (entry.lower, entry.upper) for entry in ranked[:k]},
            exact_scores={item: exact[item] for item in top_items},
            sequential_accesses=counter.sequential,
            random_accesses=counter.random,
            total_entries=total,
            rounds=rounds,
            stopping=stopping,
            consensus=self.consensus.name,
            k=k,
        )

    # -- internals ------------------------------------------------------------------------------

    @staticmethod
    def _pair_list_map(
        index: GrecaIndex, lists: Sequence[SortedAccessList[tuple[int, int]]]
    ) -> dict[tuple[int, int], SortedAccessList[tuple[int, int]]]:
        """Map every member pair to the affinity list that contains it."""
        mapping: dict[tuple[int, int], SortedAccessList[tuple[int, int]]] = {}
        for access_list in lists:
            for entry in access_list.entries:
                mapping[entry.key] = access_list
        # Pairs entirely absent from the lists (e.g. empty periodic lists) are
        # treated as exactly 0 by _pair_bounds.
        return mapping

    @staticmethod
    def _period_of(list_name: str) -> int:
        """Extract the period index from a periodic list name ``LaffV[p{i}](u...)``."""
        start = list_name.index("[p") + 2
        end = list_name.index("]", start)
        return int(list_name[start:end])

    def _pair_bounds(
        self,
        index: GrecaIndex,
        static_seen: Mapping[tuple[int, int], float],
        periodic_seen: Mapping[tuple[int, tuple[int, int]], float],
        pair_static_list: Mapping[tuple[int, int], SortedAccessList],
        pair_periodic_list: Mapping[int, Mapping[tuple[int, int], SortedAccessList]],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lower/upper bounds on the combined pairwise affinity matrix."""
        n = len(index.members)
        aff_low = np.zeros((n, n))
        aff_high = np.zeros((n, n))
        for row in range(n):
            for col in range(row + 1, n):
                pair = index._pair(index.members[row], index.members[col])
                if pair in static_seen:
                    static_low = static_high = static_seen[pair]
                else:
                    static_low = 0.0
                    owner = pair_static_list.get(pair)
                    static_high = owner.cursor_score if owner is not None else 0.0
                periodic_low: list[float] = []
                periodic_high: list[float] = []
                for period_index in index.period_indices:
                    key = (period_index, pair)
                    if key in periodic_seen:
                        periodic_low.append(periodic_seen[key])
                        periodic_high.append(periodic_seen[key])
                    else:
                        periodic_low.append(0.0)
                        owner = pair_periodic_list[period_index].get(pair)
                        periodic_high.append(owner.cursor_score if owner is not None else 0.0)
                low = index.combine(static_low, periodic_low)
                high = index.combine(static_high, periodic_high)
                aff_low[row, col] = aff_low[col, row] = low
                aff_high[row, col] = aff_high[col, row] = high
        return aff_low, aff_high

    def _compute_bounds(
        self,
        index: GrecaIndex,
        preference_lists: Sequence[SortedAccessList[int]],
        seen_apref: np.ndarray,
        static_seen: Mapping[tuple[int, int], float],
        periodic_seen: Mapping[tuple[int, tuple[int, int]], float],
        pair_static_list: Mapping[tuple[int, int], SortedAccessList],
        pair_periodic_list: Mapping[int, Mapping[tuple[int, int], SortedAccessList]],
    ) -> tuple[np.ndarray, np.ndarray, float, np.ndarray]:
        """Per-item consensus bounds, the global threshold and the buffered mask."""
        aff_low, aff_high = self._pair_bounds(
            index, static_seen, periodic_seen, pair_static_list, pair_periodic_list
        )
        cursor_values = np.array([access_list.cursor_score for access_list in preference_lists])

        unseen = np.isnan(seen_apref)
        apref_low = np.where(unseen, 0.0, seen_apref)
        apref_high = np.where(unseen, cursor_values[:, None], seen_apref)

        pref_low = apref_low + aff_low @ apref_low
        pref_high = apref_high + aff_high @ apref_high
        lower, upper = consensus_bounds(self.consensus, pref_low, pref_high, index.scale)

        # Global threshold: the best score a completely unseen item could reach.
        virtual_low = np.zeros((len(index.members), 1))
        virtual_high = (cursor_values + aff_high @ cursor_values)[:, None]
        _, threshold_arr = consensus_bounds(self.consensus, virtual_low, virtual_high, index.scale)
        threshold = float(threshold_arr[0])

        buffered = ~np.all(unseen, axis=0)
        return lower, upper, threshold, buffered

    @staticmethod
    def _check_stop(
        lower: np.ndarray,
        upper: np.ndarray,
        threshold: float,
        buffered: np.ndarray,
        k: int,
        exhausted: bool,
        tolerance: float = 1e-9,
    ) -> str | None:
        """Evaluate GRECA's stopping conditions; return the reason or ``None``."""
        buffered_indices = np.flatnonzero(buffered)
        if buffered_indices.size < k:
            return None

        buffered_lower = lower[buffered_indices]
        order = np.argsort(-buffered_lower)
        kth_lower = float(buffered_lower[order[k - 1]])

        # Threshold condition: no unseen item can beat the k-th lower bound.
        any_unseen = bool((~buffered).any())
        threshold_ok = (not any_unseen) or threshold <= kth_lower + tolerance

        # Buffer condition: no other buffered item can beat the k-th lower bound.
        rest = buffered_indices[order[k:]]
        buffer_ok = rest.size == 0 or float(upper[rest].max()) <= kth_lower + tolerance

        if threshold_ok and buffer_ok:
            if exhausted:
                return STOP_EXHAUSTED
            return STOP_BUFFER if rest.size > 0 else STOP_THRESHOLD
        return None
