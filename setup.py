"""Setup shim for environments without the `wheel` package.

All project metadata lives in pyproject.toml; this file only enables the
legacy editable-install path (`pip install -e .`) on offline machines where
PEP 660 editable wheels cannot be built.
"""

from setuptools import setup

setup()
