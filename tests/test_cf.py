"""Tests for the collaborative-filtering substrate (repro.cf)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cf.matrix import RatingMatrix
from repro.cf.predictors import ItemBasedCF, MeanPredictor, UserBasedCF
from repro.cf.similarity import (
    cosine_similarity_matrix,
    jaccard_similarity_matrix,
    pairwise_user_similarity,
    pearson_similarity_matrix,
    similarity_matrix,
)
from repro.data.ratings import MAX_RATING, MIN_RATING, dataset_from_tuples
from repro.exceptions import AlgorithmError, ConfigurationError, UnknownItemError, UnknownUserError


class TestRatingMatrix:
    def test_shape_and_values(self, toy_ratings):
        matrix = RatingMatrix(toy_ratings)
        assert matrix.shape == (4, 4)
        assert matrix.rating(1, 10) == 5.0
        assert matrix.rating(1, 13) == 0.0  # unrated

    def test_rows_and_columns(self, toy_ratings):
        matrix = RatingMatrix(toy_ratings)
        np.testing.assert_allclose(matrix.user_row(1), [5.0, 3.0, 1.0, 0.0])
        np.testing.assert_allclose(matrix.item_column(10), [5.0, 5.0, 1.0, 0.0])

    def test_unknown_lookups(self, toy_ratings):
        matrix = RatingMatrix(toy_ratings)
        with pytest.raises(UnknownUserError):
            matrix.user_row(99)
        with pytest.raises(UnknownItemError):
            matrix.item_column(99)

    def test_user_means_ignore_unrated(self, toy_ratings):
        matrix = RatingMatrix(toy_ratings)
        means = matrix.user_means()
        assert means[matrix.user_position(1)] == pytest.approx(3.0)
        assert means[matrix.user_position(4)] == pytest.approx(4.0)

    def test_item_means(self, toy_ratings):
        matrix = RatingMatrix(toy_ratings)
        means = matrix.item_means()
        assert means[matrix.item_position(13)] == pytest.approx((4 + 2 + 4) / 3)


class TestSimilarity:
    def test_cosine_identical_vectors(self):
        vectors = np.array([[1.0, 2.0, 3.0], [2.0, 4.0, 6.0]])
        sims = cosine_similarity_matrix(vectors)
        assert sims[0, 1] == pytest.approx(1.0)

    def test_cosine_orthogonal_vectors(self):
        vectors = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert cosine_similarity_matrix(vectors)[0, 1] == pytest.approx(0.0)

    def test_cosine_zero_vector_gets_zero_similarity(self):
        vectors = np.array([[0.0, 0.0], [1.0, 2.0]])
        sims = cosine_similarity_matrix(vectors)
        assert sims[0, 1] == 0.0 and sims[0, 0] == 0.0

    def test_pearson_perfect_anticorrelation(self):
        vectors = np.array([[1.0, 2.0, 3.0], [3.0, 2.0, 1.0]])
        assert pearson_similarity_matrix(vectors)[0, 1] == pytest.approx(-1.0)

    def test_pearson_requires_two_corated(self):
        vectors = np.array([[1.0, 0.0, 0.0], [1.0, 2.0, 0.0]])
        assert pearson_similarity_matrix(vectors)[0, 1] == 0.0

    def test_jaccard_overlap(self):
        vectors = np.array([[1.0, 2.0, 0.0], [0.0, 3.0, 4.0]])
        assert jaccard_similarity_matrix(vectors)[0, 1] == pytest.approx(1 / 3)

    def test_similarity_matrix_axes(self, toy_ratings):
        matrix = RatingMatrix(toy_ratings)
        users = similarity_matrix(matrix, axis="user")
        items = similarity_matrix(matrix, axis="item")
        assert users.shape == (4, 4)
        assert items.shape == (4, 4)

    def test_unknown_metric_or_axis(self, toy_ratings):
        matrix = RatingMatrix(toy_ratings)
        with pytest.raises(ConfigurationError):
            similarity_matrix(matrix, metric="nope")
        with pytest.raises(ConfigurationError):
            similarity_matrix(matrix, axis="nope")

    def test_pairwise_user_similarity_symmetric(self, toy_ratings):
        matrix = RatingMatrix(toy_ratings)
        assert pairwise_user_similarity(matrix, 1, 2) == pytest.approx(
            pairwise_user_similarity(matrix, 2, 1)
        )

    @given(
        vectors=st.lists(
            st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=4, max_size=4),
            min_size=2,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_cosine_properties(self, vectors):
        """Cosine similarities are symmetric and bounded by [-1, 1]."""
        array = np.array(vectors)
        sims = cosine_similarity_matrix(array)
        assert np.allclose(sims, sims.T)
        assert np.all(sims <= 1.0 + 1e-9) and np.all(sims >= -1.0 - 1e-9)


class TestMeanPredictor:
    def test_predicts_observed_rating(self, toy_ratings):
        predictor = MeanPredictor().fit(toy_ratings)
        assert predictor.predict(1, 10) == 5.0

    def test_falls_back_to_item_mean(self, toy_ratings):
        predictor = MeanPredictor().fit(toy_ratings)
        assert predictor.predict(1, 13) == pytest.approx(toy_ratings.item_mean(13))

    def test_unfitted_predictor_raises(self):
        with pytest.raises(AlgorithmError):
            MeanPredictor().predict(1, 10)
        assert not MeanPredictor().is_fitted


class TestUserBasedCF:
    def test_invalid_neighbourhood(self):
        with pytest.raises(ConfigurationError):
            UserBasedCF(k_neighbors=0)

    def test_predictions_in_valid_range(self, small_ratings):
        predictor = UserBasedCF(k_neighbors=20).fit(small_ratings)
        user = small_ratings.users[0]
        predictions = predictor.predict_all(user)
        assert set(predictions) == set(small_ratings.items)
        assert all(MIN_RATING <= value <= MAX_RATING for value in predictions.values())

    def test_predict_all_matches_predict(self, small_ratings):
        predictor = UserBasedCF(k_neighbors=20).fit(small_ratings)
        user = small_ratings.users[3]
        predictions = predictor.predict_all(user)
        for item in list(small_ratings.items)[:15]:
            assert predictions[item] == pytest.approx(predictor.predict(user, item), abs=1e-9)

    def test_observed_ratings_returned_verbatim(self, small_ratings):
        predictor = UserBasedCF().fit(small_ratings)
        user = small_ratings.users[0]
        rated = next(iter(small_ratings.user_ratings(user).values()))
        assert predictor.predict(user, rated.item_id) == rated.value

    def test_similar_users_drive_predictions(self):
        """A user identical to another inherits their opinion of an unseen item."""
        dataset = dataset_from_tuples(
            [
                (1, 1, 5.0), (1, 2, 1.0), (1, 3, 5.0),
                (2, 1, 5.0), (2, 2, 1.0), (2, 3, 5.0), (2, 4, 5.0),
                (3, 1, 1.0), (3, 2, 5.0), (3, 4, 1.0),
            ]
        )
        predictor = UserBasedCF(k_neighbors=None).fit(dataset)
        assert predictor.predict(1, 4) > 3.5


class TestItemBasedCF:
    def test_invalid_neighbourhood(self):
        with pytest.raises(ConfigurationError):
            ItemBasedCF(k_neighbors=-1)

    def test_predictions_in_valid_range(self, small_ratings):
        predictor = ItemBasedCF(k_neighbors=20).fit(small_ratings)
        user = small_ratings.users[1]
        for item in list(small_ratings.items)[:20]:
            assert MIN_RATING <= predictor.predict(user, item) <= MAX_RATING

    def test_observed_ratings_returned_verbatim(self, small_ratings):
        predictor = ItemBasedCF().fit(small_ratings)
        user = small_ratings.users[0]
        rated = next(iter(small_ratings.user_ratings(user).values()))
        assert predictor.predict(user, rated.item_id) == rated.value

    def test_similar_items_drive_predictions(self):
        dataset = dataset_from_tuples(
            [
                (1, 1, 5.0), (1, 2, 5.0),
                (2, 1, 5.0), (2, 2, 5.0), (2, 3, 1.0),
                (3, 1, 4.0), (3, 3, 1.0),
            ]
        )
        predictor = ItemBasedCF(k_neighbors=None).fit(dataset)
        # Item 2 is rated like item 1 by everyone who rated both.
        assert predictor.predict(3, 2) > predictor.predict(3, 3)
