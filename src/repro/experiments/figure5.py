"""Figure 5 — GRECA's %SA when varying k, group size and number of items.

Three sweeps over random groups (the paper uses 20 groups of 6, AP consensus,
discrete time model):

* **A** — ``k`` from 5 to 30: %SA grows roughly linearly, savings stay >= 81%.
* **B** — group size from 3 to 12: savings stay >= 77%.
* **C** — number of candidate items from 900 to 3,900: %SA does not
  necessarily grow with the catalogue (it depends on the score
  distributions); savings stay >= 83%.

The reproduction sweeps the same knobs on the scaled-down substrate and
reports mean %SA with standard errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.experiments.scalability import (
    AccessStats,
    ScalabilityConfig,
    ScalabilityEnvironment,
    SweepPoint,
    owned_environment,
    summarize_percent_sa,
)

#: Default sweeps (scaled versions of the paper's 5-30 / 3-12 / 900-3900 ranges).
DEFAULT_K_VALUES = (5, 10, 15, 20, 25, 30)
DEFAULT_GROUP_SIZES = (3, 6, 9, 12)
DEFAULT_ITEM_FRACTIONS = (0.25, 0.4, 0.55, 0.7, 0.85, 1.0)

#: The paper's qualitative claims for this figure.
PAPER_REFERENCE = {
    "k_saveup_at_least": 81.0,
    "group_size_saveup_at_least": 77.0,
    "items_saveup_at_least": 83.0,
}


@dataclass(frozen=True)
class Figure5Result:
    """%SA statistics for the three sweeps (charts A, B and C)."""

    varying_k: Mapping[int, AccessStats]
    varying_group_size: Mapping[int, AccessStats]
    varying_items: Mapping[int, AccessStats]

    def rows(self) -> list[dict[str, object]]:
        """Flat rows: chart, parameter value, mean %SA, std error, saveup."""
        rows: list[dict[str, object]] = []
        for chart, series in (
            ("A (varying k)", self.varying_k),
            ("B (varying group size)", self.varying_group_size),
            ("C (varying #items)", self.varying_items),
        ):
            for value, stats in series.items():
                rows.append(
                    {
                        "chart": chart,
                        "value": value,
                        "mean_percent_sa": round(stats.mean_percent_sa, 2),
                        "std_error": round(stats.std_error, 2),
                        "saveup": round(stats.mean_saveup, 2),
                    }
                )
        return rows

    def worst_saveup(self) -> float:
        """The smallest saveup observed across all sweeps."""
        all_stats = (
            list(self.varying_k.values())
            + list(self.varying_group_size.values())
            + list(self.varying_items.values())
        )
        return min(stats.mean_saveup for stats in all_stats)

    def format_table(self) -> str:
        """Human-readable rendering of the three charts."""
        lines = ["Figure 5 — average %SA varying k, group size and number of items"]
        lines.append(f"{'chart':<24} {'value':>7} {'%SA':>8} {'+/-':>6} {'saveup':>8}")
        for row in self.rows():
            lines.append(
                f"{row['chart']:<24} {row['value']:>7} {row['mean_percent_sa']:>8.2f} "
                f"{row['std_error']:>6.2f} {row['saveup']:>8.2f}"
            )
        return "\n".join(lines)


def run(
    environment: ScalabilityEnvironment | None = None,
    config: ScalabilityConfig | None = None,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    group_sizes: Sequence[int] = DEFAULT_GROUP_SIZES,
    item_fractions: Sequence[float] = DEFAULT_ITEM_FRACTIONS,
    n_workers: int | None = None,
    executor=None,
    policy=None,
) -> Figure5Result:
    """Regenerate Figure 5 on the (possibly scaled-down) substrate.

    Index construction is shared through the environment's reuse layer: the
    ``k`` sweep reuses each group's index outright, and the item-count sweep
    column-slices the group's columnar substrate instead of rebuilding it.
    ``n_workers=`` / ``executor=`` (or a bundled
    :class:`~repro.parallel.ExecutionPolicy` via ``policy=``) batch all
    three charts' sweep points into one sharded dispatch (serial reference
    semantics by default); a driver-owned environment is closed on the way
    out, exception or not.
    """
    with owned_environment(environment, config) as environment:
        base_groups = environment.random_groups()
        size_groups = {
            size: environment.random_groups(group_size=size) for size in group_sizes
        }
        n_catalogue = len(environment.ratings.items)
        item_counts = [
            max(environment.config.k + 1, int(round(fraction * n_catalogue)))
            for fraction in item_fractions
        ]

        points = [SweepPoint(groups=base_groups, k=k) for k in k_values]
        points += [SweepPoint(groups=size_groups[size]) for size in group_sizes]
        points += [SweepPoint(groups=base_groups, n_items=n) for n in item_counts]
        results = environment.run_sweep(
            points, n_workers=n_workers, executor=executor, policy=policy
        )
        stats = [
            summarize_percent_sa([record.percent_sa for record in records])
            for records in results
        ]

        varying_k = dict(zip(k_values, stats[: len(k_values)]))
        offset = len(k_values)
        varying_group_size = dict(zip(group_sizes, stats[offset : offset + len(group_sizes)]))
        offset += len(group_sizes)
        varying_items = dict(zip(item_counts, stats[offset:]))

        return Figure5Result(
            varying_k=varying_k,
            varying_group_size=varying_group_size,
            varying_items=varying_items,
        )
