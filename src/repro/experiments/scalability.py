"""Shared harness for the scalability experiments (Section 4.2, Figures 5-8).

The paper's setup: 20 random groups drawn from the quality-study
participants, default group size 6, ``k = 10``, 3,900 candidate items, AP
consensus, discrete time model over 6 two-month periods.  Every figure varies
exactly one of those knobs and reports the *average percentage of sequential
accesses* (%SA) GRECA needs, compared to a naive algorithm that scans every
list entirely (lower is better; the paper reports savings of 75% or more).

:class:`ScalabilityEnvironment` builds the shared substrate once (dataset,
social network, fitted recommender, participant pool) so that the individual
figure drivers only loop over their parameter of interest.

The environment also owns the **index-reuse layer**: one
:class:`~repro.core.greca.GrecaIndexFactory` per group (sharing the columnar
preference substrate across every sweep point) and a memo of fully built
indexes keyed by ``(group, affinity, period, n_items)``.  Sweeping ``k`` or
the consensus function therefore reuses the exact same index object, and
sweeping the period or the item count only rebuilds the small affinity
dictionaries — never the preference matrix.  Cached indexes are immutable
between runs (every :meth:`Greca.run` materialises fresh lists/counters), and
the reuse layer is proven bit-identical to per-point construction by
``tests/test_engine_properties.py`` and the golden-grid reuse test.

Group evaluation is embarrassingly parallel — every figure averages over
independent groups sharing a read-only substrate — so the measurement
methods accept ``n_workers=`` / ``executor=`` knobs routing the runs through
:mod:`repro.parallel`: tasks are sharded across process workers, each worker
receives the memoised per-group factories of its shard (pickled once per
shard, never rebuilt), and the per-shard records merge back deterministically
in group order.  Serial stays the default and the reference semantics;
``tests/test_parallel_equivalence.py`` proves the sharded path bit-identical
to it.  :func:`run_paper_scale` drives the full Table 5-scale substrate
(:meth:`ScalabilityConfig.paper_scale`) through that layer.

Every measurement method also takes the bundled spelling — ``policy=``, an
:class:`~repro.parallel.ExecutionPolicy` — resolved against the legacy
keywords at the single :func:`~repro.parallel.resolve_policy` choice point
(mixing the two spellings raises).  The policy's ``storage`` axis selects
which column-store backend the environment's registry exports into
(``"shm"`` shared memory or ``"mmap"`` spool files); the environment keeps
one registry per backend so both can serve dispatches side by side.  The
``kernel`` axis selects the GRECA round-kernel tier
(:mod:`repro.core.kernels`) every run — serial or worker-side — executes
on; all registered kernels are bit-identical, so it is purely a
performance knob.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from statistics import mean, stdev
from typing import Iterator, Sequence

from repro.core.affinity import AffinityColumns
from repro.core.consensus import ConsensusFunction, make_consensus
from repro.core.greca import Greca, GrecaIndex, GrecaIndexFactory
from repro.core.recommender import GroupRecommender
from repro.core.timeline import Period, Timeline, one_year_timeline
from repro.data.movielens import (
    MOVIELENS_1M_MOVIES,
    MOVIELENS_1M_RATINGS,
    MOVIELENS_1M_USERS,
    MovieLensConfig,
    generate_movielens_like,
)
from repro.data.ratings import RatingsDataset
from repro.data.social import SocialConfig, SocialNetwork, SocialNetworkGenerator
from repro.exceptions import ConfigurationError
from repro.groups.formation import GroupFormer
from repro.parallel import (
    EXECUTOR_PERSISTENT,
    EXECUTOR_SUPERVISED,
    STORAGE_SHM,
    DispatchReport,
    ExecutionPolicy,
    FaultPlan,
    GroupEvalTask,
    GroupRunRecord,
    PersistentShardExecutor,
    ShardExecutor,
    SharedArrayRegistry,
    SupervisedDispatch,
    SupervisionPolicy,
    available_cpus,
    evaluate_tasks,
    group_key,
    record_from_result,
    resolve_executor,
    resolve_policy,
)

#: Paper defaults (Section 4.2, "Experiment Settings").
DEFAULT_N_GROUPS = 20
DEFAULT_GROUP_SIZE = 6
DEFAULT_K = 10
DEFAULT_N_ITEMS = 3_900
DEFAULT_CONSENSUS = "AP"


@dataclass(frozen=True)
class ScalabilityConfig:
    """Configuration of the shared scalability substrate.

    The defaults are scaled down from the paper (which uses the full
    MovieLens 1M catalogue) so that the benchmark suite runs in seconds; the
    paper-scale values can be requested explicitly.
    """

    n_users: int = 150
    n_items: int = 3_900
    n_ratings: int = 80_000
    n_participants: int = 48
    n_groups: int = 8
    group_size: int = DEFAULT_GROUP_SIZE
    k: int = DEFAULT_K
    consensus: str = DEFAULT_CONSENSUS
    granularity: str = "two-month"
    seed: int = 17

    def __post_init__(self) -> None:
        if self.n_participants < self.group_size:
            raise ConfigurationError("need at least group_size participants")
        if self.n_groups <= 0 or self.group_size < 2:
            raise ConfigurationError("n_groups must be positive and group_size >= 2")

    @classmethod
    def paper_scale(cls, seed: int = 17) -> "ScalabilityConfig":
        """The paper's full MovieLens-1M substrate (Section 4.2, Table 5).

        6,040 users, 3,952 movies, 1,000,209 synthetic ratings, the paper's
        20 random groups of 6 over 48 study-scale participants.  Building
        this environment takes on the order of a minute (dataset generation
        plus CF fitting), which is why it lives behind an explicit preset —
        the sharded paper-scale bench (``scripts/bench_engine.py
        --paper-scale``) and the slow MovieLens scale test are its users.
        """
        return cls(
            n_users=MOVIELENS_1M_USERS,
            n_items=MOVIELENS_1M_MOVIES,
            n_ratings=MOVIELENS_1M_RATINGS,
            n_participants=48,
            n_groups=DEFAULT_N_GROUPS,
            seed=seed,
        )


@dataclass(frozen=True)
class AccessStats:
    """Average %SA over a set of runs, with the spread reported by the paper's error bars."""

    mean_percent_sa: float
    std_error: float
    n_runs: int

    @property
    def mean_saveup(self) -> float:
        """Average percentage of accesses avoided."""
        return 100.0 - self.mean_percent_sa


def summarize_percent_sa(values: Sequence[float]) -> AccessStats:
    """Aggregate per-run %SA values into mean and standard error."""
    if not values:
        raise ConfigurationError("no %SA values to summarise")
    spread = stdev(values) / (len(values) ** 0.5) if len(values) > 1 else 0.0
    return AccessStats(mean_percent_sa=mean(values), std_error=spread, n_runs=len(values))


@dataclass(frozen=True)
class SweepPoint:
    """One sweep point of a figure driver: a set of groups plus query knobs.

    The figure 4–8 drivers evaluate many of these; handing them to
    :meth:`ScalabilityEnvironment.run_sweep` in one list is what lets the
    parallel path batch a whole figure into a single dispatch.
    """

    groups: tuple[tuple[int, ...], ...]
    k: int | None = None
    consensus: str | ConsensusFunction | None = None
    affinity: str = "discrete"
    period: Period | None = None
    n_items: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "groups",
            tuple(tuple(int(member) for member in group) for group in self.groups),
        )
        if not self.groups:
            raise ConfigurationError("a sweep point needs at least one group")


@dataclass(frozen=True)
class EnvironmentSubstrate:
    """The raw data a :class:`ScalabilityEnvironment` is built from.

    Normally derived from a :class:`ScalabilityConfig` by :meth:`generate`;
    the incremental-update machinery injects one explicitly so a *fresh*
    environment can be built over already-merged data — the equivalence
    oracle for :meth:`ScalabilityEnvironment.apply_delta` is precisely a
    fresh environment over :meth:`with_deltas` of the base substrate.
    """

    ratings: RatingsDataset
    timeline: Timeline
    participants: tuple[int, ...]
    social: SocialNetwork

    @classmethod
    def generate(cls, config: ScalabilityConfig) -> "EnvironmentSubstrate":
        """The config-driven synthetic substrate (the historical default)."""
        ratings = generate_movielens_like(
            MovieLensConfig(
                n_users=config.n_users,
                n_items=config.n_items,
                n_ratings=config.n_ratings,
                seed=config.seed,
            )
        )
        timeline = one_year_timeline(granularity=config.granularity)
        participants = tuple(ratings.users[: config.n_participants])
        social = SocialNetworkGenerator(SocialConfig(seed=config.seed)).generate(
            participants, timeline
        )
        return cls(
            ratings=ratings, timeline=timeline, participants=participants, social=social
        )

    def with_deltas(self, deltas) -> "EnvironmentSubstrate":
        """The substrate after applying ``deltas`` in order (by full merge).

        Each delta contributes ``ratings``, ``page_likes`` and optionally a
        ``new_period`` (the :class:`~repro.updates.deltas.RatingDelta`
        shape).  The participants are carried over explicitly — they are a
        prefix of the *base* user set and must not drift when a delta
        introduces new users.
        """
        ratings, social, timeline = self.ratings, self.social, self.timeline
        for delta in deltas:
            if delta.new_period is not None:
                timeline = timeline.extended(delta.new_period)
            if delta.ratings:
                ratings = ratings.extended(delta.ratings)
            if delta.page_likes:
                social = social.with_likes(delta.page_likes)
        return EnvironmentSubstrate(
            ratings=ratings,
            timeline=timeline,
            participants=self.participants,
            social=social,
        )


@dataclass(frozen=True)
class DeltaReport:
    """What one :meth:`ScalabilityEnvironment.apply_delta` call did.

    ``full_rebuild`` reports whether the CF substrate took the incremental
    path (in-place cell writes + partial refit) or fell back to a full
    predictor re-fit (a delta introducing unseen users or items changes the
    matrix shape).  Either way the resulting state is bit-identical to a
    fresh environment over the merged substrate.  ``changed_users`` are the
    cached-apref users whose values actually moved; ``invalidated_groups``
    the memoised group keys dropped because of them (or of an affinity
    change); ``retired_segments`` the shm segments unlinked because their
    exports died with those memos.
    """

    epoch: int
    touched_users: tuple[int, ...]
    changed_users: tuple[int, ...]
    invalidated_groups: tuple[tuple[int, ...], ...]
    retired_segments: tuple[str, ...]
    full_rebuild: bool
    affinity_changed: bool


class ScalabilityEnvironment:
    """Shared substrate for Figures 5-8: data, recommender and group pool."""

    def __init__(
        self,
        config: ScalabilityConfig | None = None,
        substrate: EnvironmentSubstrate | None = None,
    ) -> None:
        self.config = config or ScalabilityConfig()
        config = self.config

        if substrate is None:
            substrate = EnvironmentSubstrate.generate(config)
        self.ratings: RatingsDataset = substrate.ratings
        self.timeline: Timeline = substrate.timeline
        self.participants: tuple[int, ...] = substrate.participants
        self.social: SocialNetwork = substrate.social
        #: Epoch counter: 0 for the base substrate, +1 per applied delta.
        self.epoch = 0
        self.recommender = GroupRecommender(
            ratings=self.ratings,
            social=self.social,
            timeline=self.timeline,
            affinity_universe=self.participants,
        ).fit()
        self.former = GroupFormer(self.ratings, candidates=self.participants, seed=config.seed)
        self._index_factories: dict[tuple[int, ...], GrecaIndexFactory] = {}
        self._index_cache: dict[tuple, GrecaIndex] = {}
        # Full-timeline affinity columns per (group, affinity model): the
        # shippable counterpart of the per-task affinity dictionaries.  One
        # entry serves every query period of a sweep (tasks carry a period
        # prefix), and the shm registry memoises one segment per entry.
        self._affinity_columns: dict[tuple, tuple[AffinityColumns, str]] = {}
        # Parallel resources, created lazily and released by close(): one
        # warm persistent pool per worker count and one column-store
        # registry per storage backend ("shm" / "mmap") whose segments are
        # shipped (once) to every dispatch using that backend.
        self._persistent_pools: dict[int, PersistentShardExecutor] = {}
        self._registries: dict[str, SharedArrayRegistry] = {}
        # Fault-tolerant dispatch: the policy ``executor="supervised"`` runs
        # under (mutable — assign to tune), and the report trail of every
        # supervised dispatch this environment performed.
        self.supervision = SupervisionPolicy()
        self.dispatch_reports: list[DispatchReport] = []
        # One reentrant lock serialises every memo/lifecycle mutation above:
        # the serving layer dispatches from worker threads while clients keep
        # materialising tasks, and unlocked check-then-set on the pool or
        # registry dicts would let two threads build (and orphan) duplicates.
        self._state_lock = threading.RLock()

    # -- parallel resource ownership ---------------------------------------------------------

    def _persistent_pool(self, n_workers: int | None) -> PersistentShardExecutor:
        """The environment's warm pool for ``n_workers`` (created on first use)."""
        if n_workers is None:
            raise ConfigurationError(
                "the persistent executor needs an explicit worker count: pass n_workers"
            )
        with self._state_lock:
            pool = self._persistent_pools.get(int(n_workers))
            if pool is None:
                pool = PersistentShardExecutor(int(n_workers))
                self._persistent_pools[int(n_workers)] = pool
            return pool

    def _shared_registry(self, storage: str = STORAGE_SHM) -> SharedArrayRegistry:
        """The environment's registry for ``storage`` (recreated lazily after close())."""
        with self._state_lock:
            registry = self._registries.get(storage)
            if registry is None or registry.closed:
                registry = SharedArrayRegistry(storage=storage)
                self._registries[storage] = registry
            return registry

    def shm_segment_names(self) -> tuple[str, ...]:
        """Names of the live column-store segments this environment owns.

        Shared-memory segment names and mmap spool-file paths alike, across
        every storage backend the environment has exported into.  Empty when
        no registry exists (nothing parallel has run, or :meth:`close`
        already released everything).  The serving layer's shutdown checks
        and the lifecycle tests use this to assert ``/dev/shm`` — and the
        spool directory — really are clean.
        """
        with self._state_lock:
            names: list[str] = []
            for registry in self._registries.values():
                if not registry.closed:
                    names.extend(registry.segment_names)
            return tuple(names)

    def _resolve_backend(
        self, executor: ShardExecutor | str | None, n_workers: int | None
    ) -> ShardExecutor:
        """Resolve ``executor=`` — routing ``"persistent"`` to the warm pool.

        ``"supervised"`` wraps the warm pool in a fresh
        :class:`SupervisedDispatch` under :attr:`supervision` — a fresh
        wrapper per call (wrappers are cheap and stateless between runs)
        around the memoised pool, so supervised dispatches still reuse warm
        workers and survive :meth:`close` (the next call re-wraps whatever
        pool the environment then holds).
        """
        if executor == EXECUTOR_PERSISTENT:
            return self._persistent_pool(n_workers)
        if executor == EXECUTOR_SUPERVISED:
            return SupervisedDispatch(
                self._persistent_pool(n_workers),
                policy=self.supervision,
                owns_executor=False,
            )
        return resolve_executor(executor, n_workers)

    def close(self) -> None:
        """Release parallel resources: shut pools down, unlink shm segments.

        Safe to call at any time (and repeatedly): the next parallel
        dispatch lazily recreates what it needs.  Serial evaluation never
        touches these resources at all.  A registry abandoned without
        ``close()`` still unlinks its segments via its ``weakref.finalize``
        backstop — this method just makes the release deterministic.
        """
        with self._state_lock:
            pools = list(self._persistent_pools.values())
            self._persistent_pools.clear()
            registries = list(self._registries.values())
            self._registries.clear()
        for pool in pools:
            pool.shutdown()
        for registry in registries:
            registry.close()

    def __enter__(self) -> "ScalabilityEnvironment":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- incremental updates (epoch adoption) ------------------------------------------------

    @property
    def substrate(self) -> EnvironmentSubstrate:
        """The current raw substrate (reflecting every applied delta)."""
        with self._state_lock:
            return EnvironmentSubstrate(
                ratings=self.ratings,
                timeline=self.timeline,
                participants=self.participants,
                social=self.social,
            )

    def apply_delta(self, delta) -> DeltaReport:
        """Adopt a :class:`~repro.updates.deltas.RatingDelta` as a new epoch.

        New ratings over known users/items are written into the fitted CF
        matrix in place and the model state is partially refit (touched
        similarity rows, full gemm, means); a delta introducing unseen users
        or items falls back to a full predictor re-fit.  New page likes and
        an optional appended period extend the affinity substrate
        append-only.  Cached aprefs are patched item-wise where provably
        bit-stable, and only the memoised factories/indexes of groups whose
        inputs actually changed are dropped — the next dispatch rebuilds
        exactly those, while shm exports of the dropped memos are retired
        (unlinked) and warm pool workers purge the dead generations via the
        payload-carried floor, with **zero pool restarts**.

        The resulting environment state is bit-identical to a fresh
        ``ScalabilityEnvironment(config, substrate=old.substrate
        .with_deltas([delta]))`` — the equivalence the epoch test matrix
        enforces across serial, persistent, supervised and service paths.
        """
        with self._state_lock:
            return self._apply_delta_locked(delta)

    def _apply_delta_locked(self, delta) -> DeltaReport:
        touched = tuple(sorted({rating.user_id for rating in delta.ratings}))
        affinity_changed = bool(delta.page_likes) or delta.new_period is not None
        full_rebuild = False
        changed_users: set[int] = set()

        if delta.ratings:
            merged = self.ratings.extended(delta.ratings)
            predictor = self.recommender.predictor
            known = all(
                self.ratings.has_user(rating.user_id) and self.ratings.has_item(rating.item_id)
                for rating in delta.ratings
            )
            self.ratings = merged
            self.recommender.ratings = merged
            if known and predictor.is_fitted:
                for rating in delta.ratings:
                    predictor.matrix.set_rating(rating.user_id, rating.item_id, rating.value)
                predictor.partial_refit(touched)
                changed_users = self.recommender.refresh_aprefs(touched)
            else:
                # Shape change (new user/item row or column): rebuild the CF
                # substrate outright — identical to the oracle by construction.
                full_rebuild = True
                predictor.fit(merged)
                changed_users = self.recommender.invalidate_aprefs()

        if affinity_changed:
            timeline = self.timeline
            if delta.new_period is not None:
                timeline = timeline.extended(delta.new_period)
            social = self.social.with_likes(delta.page_likes)
            like_users = sorted({like.user_id for like in delta.page_likes})
            self.recommender.refresh_affinities(social, timeline, like_users)
            self.social = social
            self.timeline = timeline

        # Memo invalidation: a group is dirty when a member's aprefs changed
        # (its factory embeds them); any affinity change dirties every
        # affinity-column memo and every finished index.
        if full_rebuild:
            invalidated = set(self._index_factories)
        else:
            invalidated = {
                key for key in self._index_factories if changed_users.intersection(key)
            }
        for key in invalidated:
            del self._index_factories[key]
        if affinity_changed or full_rebuild:
            self._affinity_columns.clear()
            self._index_cache.clear()
        else:
            for key in [key for key in self._index_cache if key[0] in invalidated]:
                del self._index_cache[key]

        # Retire shm exports whose memos just died: their segments unlink
        # now, and the next dispatch's payloads carry the raised generation
        # floor so warm workers purge the dead caches — no pool restart.
        retired_names: list[str] = []
        for registry in self._registries.values():
            if not registry.closed:
                retired_names.extend(
                    registry.retire_stale(
                        live_factories=list(self._index_factories.values()),
                        live_columns=[
                            entry[0] for entry in self._affinity_columns.values()
                        ],
                    )
                )
        retired = tuple(retired_names)

        self.epoch += 1
        return DeltaReport(
            epoch=self.epoch,
            touched_users=touched,
            changed_users=tuple(sorted(changed_users)),
            invalidated_groups=tuple(sorted(invalidated)),
            retired_segments=retired,
            full_rebuild=full_rebuild,
            affinity_changed=affinity_changed,
        )

    # -- index reuse -----------------------------------------------------------------------------

    @staticmethod
    def _memo_key(
        group: Sequence[int], affinity: str, period: Period | None, n_items: int | None
    ) -> tuple:
        """Canonical memo key for one sweep point.

        Built exclusively from hashable, shipment-stable values: the group as
        a tuple of python ints (never the caller's list, never numpy
        integers), the affinity name as ``str`` and ``n_items`` as a plain
        ``int``.  The same canonical group key addresses the factory cache,
        so the parallel layer can ship memoised factories to workers keyed
        identically on both sides of the pickle boundary.
        """
        return (
            group_key(group),
            str(affinity),
            period,
            None if n_items is None else int(n_items),
        )

    def index_factory(self, group: Sequence[int]) -> GrecaIndexFactory:
        """The (memoised) per-group index factory over the full catalogue."""
        key = group_key(group)
        factory = self._index_factories.get(key)
        if factory is None:
            with self._state_lock:
                factory = self._index_factories.get(key)
                if factory is None:
                    factory = self.recommender.index_factory(list(group), exclude_rated=False)
                    self._index_factories[key] = factory
        return factory

    def affinity_columns(
        self, group: Sequence[int], affinity: str = "discrete"
    ) -> tuple[AffinityColumns, str]:
        """Memoised full-timeline ``(AffinityColumns, time_model)`` for one group.

        For the temporal models the columns come straight from the
        :class:`~repro.core.affinity.ComputedAffinities` columnar substrate
        (:meth:`~repro.core.affinity.ComputedAffinities.group_columns`,
        element-identical to the scalar accessors); the ablation models go
        through the dict components.  Either way a query at period index
        ``p`` uses the ``p + 1``-period prefix, bit-identical to
        :meth:`~repro.core.recommender.GroupRecommender.affinity_components`
        at that period.
        """
        key = (group_key(group), str(affinity))
        entry = self._affinity_columns.get(key)
        if entry is not None:
            return entry
        with self._state_lock:
            entry = self._affinity_columns.get(key)
            if entry is not None:
                return entry
            members = list(group)
            if affinity in ("discrete", "continuous"):
                pairs = [
                    (left, right)
                    for position, left in enumerate(members)
                    for right in members[position + 1 :]
                ]
                columns = self.recommender.computed_affinities.group_columns(pairs)
                time_model = affinity
            else:
                static, periodic, averages, time_model = self.recommender.affinity_components(
                    members, period=self.timeline.current, affinity=affinity
                )
                columns = AffinityColumns.from_components(static, periodic, averages)
            entry = (columns, time_model)
            self._affinity_columns[key] = entry
        return entry

    def cached_index(
        self,
        group: Sequence[int],
        period: Period | None = None,
        affinity: str = "discrete",
        n_items: int | None = None,
    ) -> GrecaIndex:
        """A GRECA index for one sweep point, built through the reuse layer.

        Bit-identical to ``recommender.build_index(group, period=period,
        affinity=affinity, exclude_rated=False, items=items[:n_items])`` —
        the scan-equivalence tests enforce this — but sweep points sharing a
        group reuse the columnar preference substrate, and repeated points
        reuse the index object outright.
        """
        if period is None and self.timeline is not None:
            period = self.timeline.current
        key = self._memo_key(group, affinity, period, n_items)
        index = self._index_cache.get(key)
        if index is None:
            static, periodic, averages, time_model = self.recommender.affinity_components(
                list(group), period=period, affinity=affinity
            )
            items = list(self.ratings.items[:n_items]) if n_items is not None else None
            index = self.index_factory(group).build(
                static,
                periodic=periodic,
                averages=averages,
                time_model=time_model,
                items=items,
            )
            self._index_cache[key] = index
        return index

    # -- groups ----------------------------------------------------------------------------------

    def random_groups(self, n_groups: int | None = None, group_size: int | None = None) -> list[list[int]]:
        """The paper's "20 different random groups" (counts from the config by default)."""
        return self.former.random_groups(
            n_groups or self.config.n_groups, group_size or self.config.group_size
        )

    def build_default_indexes(self) -> list:
        """Pre-built GRECA indexes for the default benchmark point.

        One index per default random group, discrete affinity model, full
        catalogue.  The perf gate (:func:`run_quick_smoke`), the recorded
        trajectory (``scripts/bench_engine.py``) and the engine benchmark
        (``benchmarks/test_bench_engine.py``) all measure exactly this
        workload, so it is defined in one place.
        """
        return [self.cached_index(group) for group in self.random_groups()]

    # -- measurement ------------------------------------------------------------------------------

    def _consensus_fn(
        self, consensus: str | ConsensusFunction | None
    ) -> ConsensusFunction:
        if isinstance(consensus, ConsensusFunction):
            return consensus
        return make_consensus(consensus or self.config.consensus)

    def percent_sa(
        self,
        group: Sequence[int],
        k: int | None = None,
        consensus: str | ConsensusFunction | None = None,
        affinity: str = "discrete",
        period: Period | None = None,
        n_items: int | None = None,
        kernel: str | None = None,
    ) -> float:
        """%SA of one GRECA run for one group (index built through the reuse layer)."""
        consensus_fn = self._consensus_fn(consensus)
        index = self.cached_index(group, period=period, affinity=affinity, n_items=n_items)
        result = Greca(consensus_fn, k=k or self.config.k, kernel=kernel).run(index)
        return result.percent_sequential_accesses

    def task_for(
        self,
        group: Sequence[int],
        k: int | None = None,
        consensus: str | ConsensusFunction | None = None,
        affinity: str = "discrete",
        period: Period | None = None,
        n_items: int | None = None,
        columnar: bool = True,
        kernel: str | None = None,
    ) -> GroupEvalTask:
        """Materialise one sweep point as a shippable :class:`GroupEvalTask`.

        Resolves everything a worker must not touch — the consensus function,
        the query period, the affinity inputs, the restricted item tuple —
        and warms the group's factory in the (memoised) factory cache, so
        dispatching the task ships the cached factory instead of rebuilding
        the preference substrate per worker.

        By default the affinity inputs ride as a reference to the group's
        memoised full-timeline :meth:`affinity_columns` plus the query
        period's prefix length — the shape the shared-memory shipment turns
        into pure descriptors.  ``columnar=False`` materialises the PR 3/4
        per-task dictionaries instead (the by-value reference shape;
        bit-identical results either way).
        """
        if period is None and self.timeline is not None:
            period = self.timeline.current
        self.index_factory(group)  # warm the shared substrate before shipping
        items = (
            tuple(self.ratings.items[: int(n_items)]) if n_items is not None else None
        )
        common = dict(
            group=group_key(group),
            k=int(k or self.config.k),
            consensus=self._consensus_fn(consensus),
            items=items,
            kernel=kernel,
        )
        if columnar:
            columns, time_model = self.affinity_columns(group, affinity)
            n_periods = (
                self.timeline.index_of(period) + 1 if columns.n_periods else 0
            )
            return GroupEvalTask(
                static={},
                periodic={},
                averages={},
                time_model=time_model,
                affinity_ref=columns,
                n_periods=n_periods,
                **common,
            )
        static, periodic, averages, time_model = self.recommender.affinity_components(
            list(group), period=period, affinity=affinity
        )
        return GroupEvalTask(
            static=static,
            periodic=periodic,
            averages=averages,
            time_model=time_model,
            **common,
        )

    @property
    def last_dispatch_report(self) -> DispatchReport | None:
        """The most recent supervised dispatch's report, if any dispatch ran supervised."""
        return self.dispatch_reports[-1] if self.dispatch_reports else None

    def evaluate(
        self,
        tasks: Sequence[GroupEvalTask],
        n_workers: int | None = None,
        executor: ShardExecutor | str | None = None,
        supervision: SupervisionPolicy | bool | None = None,
        fault_plan: FaultPlan | None = None,
        shipment: str | None = None,
        storage: str | None = None,
        kernel: str | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> list[GroupRunRecord]:
        """Evaluate materialised tasks, serially or through the sharded layer.

        Without parallel knobs the tasks run in-process in task order through
        the same ``factory.build`` + :class:`Greca` path the workers use —
        the serial reference semantics.  With ``n_workers`` (and/or an
        explicit ``executor``: ``"serial"``, ``"process"``, ``"persistent"``
        or an instance) the tasks are partitioned into shards, each worker
        receives its shard's group factories — by zero-copy descriptor for
        the process-crossing backends, the environment's registry owning the
        segments — and the per-shard records are merged back
        deterministically in task order, bit-identical to the serial run
        (``tests/test_parallel_equivalence.py``).
        ``executor="persistent"`` reuses one warm worker pool per worker
        count across calls (released by :meth:`close`).
        ``executor="supervised"`` adds the fault-tolerant dispatch tier on
        top of that warm pool, under this environment's :attr:`supervision`
        policy; each supervised dispatch appends its
        :class:`~repro.parallel.DispatchReport` to :attr:`dispatch_reports`.
        A ``supervision=`` policy (or ``True``) supervises any parallel
        backend for this call, and ``fault_plan=`` injects deterministic
        faults (the chaos suite's hook).  Serial evaluation ignores both.
        ``storage=`` selects the column-store backend descriptor shipment
        exports into (``"shm"`` shared memory — the default — or ``"mmap"``
        spool files); the environment keeps one registry per backend.
        ``kernel=`` selects the round-kernel tier every run executes on; a
        policy kernel is stamped onto tasks that do not already carry their
        own, so serial runs and warm-pool workers honour it alike.

        All dispatch knobs can arrive bundled as ``policy=``
        (:class:`~repro.parallel.ExecutionPolicy`); mixing ``policy=`` with
        the loose keywords raises at the :func:`~repro.parallel
        .resolve_policy` choice point.  ``fault_plan`` stays a separate
        argument — it describes the test harness, not the execution shape.
        """
        policy = resolve_policy(
            policy,
            n_workers=n_workers,
            executor=executor,
            shipment=shipment,
            supervision=supervision,
            storage=storage,
            kernel=kernel,
        )
        if policy.kernel is not None:
            # The policy's kernel travels inside each task (that is what warm
            # persistent-pool workers read); tasks carrying an explicit
            # kernel of their own keep it.
            tasks = [
                task if task.kernel is not None else replace(task, kernel=policy.kernel)
                for task in tasks
            ]
        if policy.is_serial:
            from repro.parallel.worker import run_task

            return [run_task(task, self.index_factory(task.group)) for task in tasks]
        for task in tasks:  # warm any factory not already memoised by task_for
            self.index_factory(task.group)
        backend = self._resolve_backend(policy.executor, policy.n_workers)
        # Process-crossing backends ship zero-copy: the environment-owned
        # registry for the policy's storage backend places each memoised
        # factory's arrays in its column store once, and every dispatch
        # (figure drivers, persistent-pool calls) references the same
        # segments.
        registry = (
            self._shared_registry(policy.storage_name)
            if backend.ships_payloads
            else None
        )
        # Snapshot the factory memo: concurrent service requests keep
        # inserting factories via task_for while this dispatch iterates the
        # map, and sharing the live dict would intermittently raise
        # "dictionary changed size during iteration" mid-dispatch.
        with self._state_lock:
            factories = dict(self._index_factories)
        return evaluate_tasks(
            tasks,
            factories,
            n_shards=policy.n_workers,
            executor=backend,
            shipment=policy.shipment,
            registry=registry,
            storage=policy.storage,
            supervision=policy.supervision,
            fault_plan=fault_plan,
            reports=self.dispatch_reports,
        )

    def run_records(
        self,
        groups: Sequence[Sequence[int]],
        k: int | None = None,
        consensus: str | ConsensusFunction | None = None,
        affinity: str = "discrete",
        period: Period | None = None,
        n_items: int | None = None,
        n_workers: int | None = None,
        executor: ShardExecutor | str | None = None,
        supervision: SupervisionPolicy | bool | None = None,
        fault_plan: FaultPlan | None = None,
        shipment: str | None = None,
        storage: str | None = None,
        kernel: str | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> list[GroupRunRecord]:
        """One GRECA run record per group, in group order.

        Serial (the default) goes through :meth:`cached_index`, so repeated
        sweep points reuse finished index objects outright; the sharded path
        (``n_workers=`` / ``executor=``, or a bundled ``policy=``) ships
        each shard the memoised factories of its groups and rebuilds the
        per-point indexes worker-side — a bit-identical computation by the
        reuse layer's equivalence guarantee.
        """
        policy = resolve_policy(
            policy,
            n_workers=n_workers,
            executor=executor,
            shipment=shipment,
            supervision=supervision,
            storage=storage,
            kernel=kernel,
        )
        if policy.is_serial:
            consensus_fn = self._consensus_fn(consensus)
            records = []
            for group in groups:
                index = self.cached_index(
                    group, period=period, affinity=affinity, n_items=n_items
                )
                result = Greca(
                    consensus_fn, k=k or self.config.k, kernel=policy.kernel
                ).run(index)
                records.append(record_from_result(group_key(group), result))
            return records
        tasks = [
            self.task_for(
                group,
                k=k,
                consensus=consensus,
                affinity=affinity,
                period=period,
                n_items=n_items,
                columnar=policy.columnar,
            )
            for group in groups
        ]
        return self.evaluate(tasks, policy=policy, fault_plan=fault_plan)

    def run_sweep(
        self,
        points: Sequence[SweepPoint],
        n_workers: int | None = None,
        executor: ShardExecutor | str | None = None,
        supervision: SupervisionPolicy | bool | None = None,
        fault_plan: FaultPlan | None = None,
        shipment: str | None = None,
        storage: str | None = None,
        kernel: str | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> list[list[GroupRunRecord]]:
        """Evaluate many sweep points; one record list per point, in point order.

        Serial (the default) runs each point through :meth:`run_records` —
        the reference semantics, reusing finished indexes outright.  With
        parallel knobs every point's tasks are materialised up front and
        **batched into one dispatch**: tasks are ordered group-major (so a
        contiguous shard plan ships each group's factory — and its affinity
        columns — to as few shards as possible, one payload per (shard,
        factory) when points share their groups), evaluated once, and
        scattered back per point.  Workers loop the sweep points of a shard
        against their per-process memoised indexes instead of paying one
        dispatch per point.  Records are bit-identical to the per-point
        serial runs (``tests/test_parallel_equivalence.py``).
        """
        policy = resolve_policy(
            policy,
            n_workers=n_workers,
            executor=executor,
            shipment=shipment,
            supervision=supervision,
            storage=storage,
            kernel=kernel,
        )
        if policy.is_serial:
            return [
                self.run_records(
                    point.groups,
                    k=point.k,
                    consensus=point.consensus,
                    affinity=point.affinity,
                    period=point.period,
                    n_items=point.n_items,
                    kernel=policy.kernel,
                )
                for point in points
            ]
        entries = []  # (group key, point index, position within point, task)
        for point_index, point in enumerate(points):
            for position, group in enumerate(point.groups):
                task = self.task_for(
                    group,
                    k=point.k,
                    consensus=point.consensus,
                    affinity=point.affinity,
                    period=point.period,
                    n_items=point.n_items,
                    columnar=policy.columnar,
                )
                entries.append((task.group, point_index, position, task))
        entries.sort(key=lambda entry: entry[:3])
        records = self.evaluate(
            [entry[3] for entry in entries], policy=policy, fault_plan=fault_plan
        )
        results: list[list[GroupRunRecord]] = [
            [None] * len(point.groups) for point in points  # type: ignore[list-item]
        ]
        for (_, point_index, position, _task), record in zip(entries, records):
            results[point_index][position] = record
        return results

    def average_percent_sa(
        self,
        groups: Sequence[Sequence[int]],
        k: int | None = None,
        consensus: str | ConsensusFunction | None = None,
        affinity: str = "discrete",
        period: Period | None = None,
        n_items: int | None = None,
        n_workers: int | None = None,
        executor: ShardExecutor | str | None = None,
        storage: str | None = None,
        kernel: str | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> AccessStats:
        """Average %SA over a collection of groups (one GRECA run each).

        ``n_workers=`` / ``executor=`` (or a bundled ``policy=``) route the
        runs through the sharded layer; the per-group %SA values are merged
        back in group order before averaging, so the reported mean and
        standard error are bit-identical to the serial run.
        """
        records = self.run_records(
            groups,
            k=k,
            consensus=consensus,
            affinity=affinity,
            period=period,
            n_items=n_items,
            policy=resolve_policy(
                policy,
                n_workers=n_workers,
                executor=executor,
                storage=storage,
                kernel=kernel,
            ),
        )
        return summarize_percent_sa([record.percent_sa for record in records])


@contextmanager
def owned_environment(
    environment: ScalabilityEnvironment | None,
    config: ScalabilityConfig | None = None,
) -> Iterator[ScalabilityEnvironment]:
    """The figure drivers' environment-ownership contract, in one place.

    A caller-supplied environment passes through untouched (the caller
    releases it); a driver-built one is closed on the way out — normal
    return, exception or interrupt alike — so a failure mid-figure can
    never leak a persistent pool or ``/dev/shm`` segments.  This is the
    same try/finally parity :func:`run_quick_smoke` and
    :func:`run_paper_scale` follow.
    """
    owns = environment is None
    environment = environment if environment is not None else ScalabilityEnvironment(config)
    try:
        yield environment
    finally:
        if owns:
            environment.close()


# -- perf smoke gate ----------------------------------------------------------------------------

#: Default wall-clock budgets for :func:`run_quick_smoke` (seconds).  The
#: measurement budget is calibrated against the batched columnar engine
#: (~0.25 s for the 8 default groups, see BENCH_engine.json): a regression
#: back to per-entry speed (~1.3 s) blows it with margin, while normal CI
#: noise does not.
QUICK_SMOKE_TOTAL_BUDGET = 20.0
QUICK_SMOKE_MEASURE_BUDGET = 1.0


@dataclass(frozen=True)
class QuickSmokeResult:
    """Outcome of the one-point scalability smoke run."""

    stats: AccessStats
    setup_seconds: float
    measure_seconds: float
    total_budget: float
    measure_budget: float
    n_workers: int | None = None
    sharded: bool = False

    @property
    def within_budget(self) -> bool:
        """``True`` when both the total and the measurement budget held."""
        total = self.setup_seconds + self.measure_seconds
        return total <= self.total_budget and self.measure_seconds <= self.measure_budget

    def format_summary(self) -> str:
        """One-paragraph human-readable summary for the CLI."""
        verdict = "OK" if self.within_budget else "OVER BUDGET"
        if not self.sharded:
            workers = "serial"
        elif self.n_workers is not None:
            workers = f"{self.n_workers} workers"
        else:
            workers = "sharded"  # custom executor, worker count unknown here
        return (
            f"quick smoke [{verdict}]: mean %SA={self.stats.mean_percent_sa:.2f} "
            f"(±{self.stats.std_error:.2f}, {self.stats.n_runs} groups, {workers}) | "
            f"setup {self.setup_seconds:.2f}s + measure {self.measure_seconds:.2f}s "
            f"(budgets: total {self.total_budget:.0f}s, measure {self.measure_budget:.1f}s)"
        )


def run_quick_smoke(
    total_budget: float = QUICK_SMOKE_TOTAL_BUDGET,
    measure_budget: float = QUICK_SMOKE_MEASURE_BUDGET,
    config: ScalabilityConfig | None = None,
    n_workers: int | None = None,
    executor: ShardExecutor | str | None = None,
    storage: str | None = None,
    kernel: str | None = None,
    policy: ExecutionPolicy | None = None,
) -> QuickSmokeResult:
    """Run one default scalability point under a wall-clock budget.

    This is the fail-fast perf gate (``make bench`` /
    ``python -m repro.experiments.runner --quick``): it builds the shared
    substrate, measures GRECA's average %SA over the default groups at the
    paper's 3,900-item point, and reports whether the setup-plus-measurement
    time fits the budgets.  Callers (the Makefile, CI) should fail when
    :attr:`QuickSmokeResult.within_budget` is ``False``.

    Serial (the default, and what the budgets are calibrated against)
    measures the engine alone over pre-built indexes.  With ``n_workers=``
    the measured phase instead routes the same groups through the sharded
    layer, so it additionally covers shard planning, factory shipment and the
    order-restoring merge — the statistics are bit-identical either way.
    """
    start = time.perf_counter()
    policy = resolve_policy(
        policy, n_workers=n_workers, executor=executor, storage=storage, kernel=kernel
    )
    environment = ScalabilityEnvironment(config)
    try:
        return _run_quick_smoke(
            environment, start, total_budget, measure_budget, policy
        )
    finally:
        environment.close()  # release any persistent pool / shm segments


def _run_quick_smoke(
    environment: ScalabilityEnvironment,
    start: float,
    total_budget: float,
    measure_budget: float,
    policy: ExecutionPolicy,
) -> QuickSmokeResult:
    consensus = make_consensus(environment.config.consensus)
    # One draw of the default groups serves both paths (random_groups draws
    # fresh groups per call).
    groups = environment.random_groups()
    serial = policy.is_serial
    if serial:
        # cached_index pre-builds exactly what build_default_indexes would.
        indexes = [environment.cached_index(group) for group in groups]
    else:
        # The sharded path never touches finished indexes — workers rebuild
        # them from the factories — so setup only warms what ships.
        for group in groups:
            environment.index_factory(group)
    setup_seconds = time.perf_counter() - start

    if serial:
        # Measure the engine only: indexes are pre-built, so the measured
        # phase is exactly what BENCH_engine.json tracks (list build +
        # algorithm + result).
        start = time.perf_counter()
        results = [
            Greca(consensus, k=environment.config.k, kernel=policy.kernel).run(index)
            for index in indexes
        ]
        measure_seconds = time.perf_counter() - start
        values = [result.percent_sequential_accesses for result in results]
    else:
        start = time.perf_counter()
        records = environment.run_records(groups, policy=policy)
        measure_seconds = time.perf_counter() - start
        values = [record.percent_sa for record in records]
    stats = summarize_percent_sa(values)
    return QuickSmokeResult(
        stats=stats,
        setup_seconds=setup_seconds,
        measure_seconds=measure_seconds,
        total_budget=total_budget,
        measure_budget=measure_budget,
        n_workers=policy.n_workers,
        sharded=not serial,
    )


# -- paper-scale sharded run --------------------------------------------------------------------


@dataclass(frozen=True)
class PaperScaleResult:
    """Serial-vs-sharded comparison over the full MovieLens-1M-scale substrate.

    The workload is the paper's Figure 6 sweep at Table 5 scale: every
    default random group evaluated at every query period of the timeline
    (``n_tasks = n_groups × n_periods`` GRECA runs over the 6,040 × 3,952
    synthetic substrate).  ``identical`` asserts the sharded records match
    the serial ones bit-for-bit; ``speedup`` is wall-clock serial over
    sharded.  Meaningful speedups require actual cores — ``n_cpus`` records
    how many this host granted, and on a single-CPU host the sharded run
    measures pure overhead (expect ``speedup < 1``; the ≥ 1.5× target at 4
    workers applies to hosts with ≥ 4 usable cores).
    """

    stats: AccessStats
    serial_seconds: float
    sharded_seconds: float
    setup_seconds: float
    n_workers: int
    n_tasks: int
    n_groups: int
    n_periods: int
    n_cpus: int
    sa_checksum: int
    identical: bool

    @property
    def speedup(self) -> float:
        """Serial wall time over sharded wall time."""
        if self.sharded_seconds <= 0:
            return float("inf")
        return self.serial_seconds / self.sharded_seconds

    def format_summary(self) -> str:
        """One-paragraph human-readable summary for the CLI."""
        verdict = "bit-identical" if self.identical else "MISMATCH"
        return (
            f"paper scale [{verdict}]: {self.n_tasks} runs "
            f"({self.n_groups} groups × {self.n_periods} periods) | "
            f"serial {self.serial_seconds:.2f}s vs sharded {self.sharded_seconds:.2f}s "
            f"@ {self.n_workers} workers on {self.n_cpus} cpu(s) "
            f"→ speedup {self.speedup:.2f}× | mean %SA={self.stats.mean_percent_sa:.2f}, "
            f"SA checksum {self.sa_checksum}"
        )


def run_paper_scale(
    n_workers: int = 4,
    executor: ShardExecutor | str | None = None,
    config: ScalabilityConfig | None = None,
    environment: ScalabilityEnvironment | None = None,
    storage: str | None = None,
    kernel: str | None = None,
) -> PaperScaleResult:
    """Run the full MovieLens-1M-scale substrate through the sharded path.

    Builds the :meth:`ScalabilityConfig.paper_scale` environment (unless one
    is supplied), materialises the all-periods × all-groups task list once,
    then times the serial reference evaluation against one sharded dispatch
    at ``n_workers`` shards and verifies the merged records are
    bit-identical.  ``scripts/bench_engine.py --paper-scale`` appends the
    outcome to ``BENCH_engine.json``.
    """
    start = time.perf_counter()
    owns_environment = environment is None
    if environment is None:
        environment = ScalabilityEnvironment(config or ScalabilityConfig.paper_scale())
    try:
        return _run_paper_scale(environment, start, n_workers, executor, storage, kernel)
    finally:
        if owns_environment:
            environment.close()


def _run_paper_scale(
    environment: ScalabilityEnvironment,
    start: float,
    n_workers: int,
    executor: ShardExecutor | str | None,
    storage: str | None = None,
    kernel: str | None = None,
) -> PaperScaleResult:
    groups = environment.random_groups()
    periods = list(environment.timeline)
    # Group-major order keeps each group's tasks contiguous, so a contiguous
    # shard plan ships every factory to at most two shards instead of all of
    # them — shipment cost is the sharded path's main overhead at this scale.
    tasks = [
        environment.task_for(group, period=period)
        for group in groups
        for period in periods
    ]
    setup_seconds = time.perf_counter() - start

    start = time.perf_counter()
    serial_records = environment.evaluate(tasks, kernel=kernel)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    sharded_records = environment.evaluate(
        tasks, n_workers=n_workers, executor=executor, storage=storage, kernel=kernel
    )
    sharded_seconds = time.perf_counter() - start

    stats = summarize_percent_sa([record.percent_sa for record in sharded_records])
    return PaperScaleResult(
        stats=stats,
        serial_seconds=serial_seconds,
        sharded_seconds=sharded_seconds,
        setup_seconds=setup_seconds,
        n_workers=n_workers,
        n_tasks=len(tasks),
        n_groups=len(groups),
        n_periods=len(periods),
        n_cpus=available_cpus(),
        sa_checksum=sum(record.sequential_accesses for record in sharded_records),
        identical=sharded_records == serial_records,
    )
