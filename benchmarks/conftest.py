"""Shared fixtures for the benchmark harness.

Each ``test_bench_*`` module regenerates one table or figure of the paper.
The expensive substrates (synthetic MovieLens-like dataset, social network,
fitted recommender, study cohort) are built once per session and shared.

Run with::

    pytest benchmarks/ --benchmark-only

Every benchmark prints the regenerated rows/series (the same quantities the
paper reports) in addition to the timing collected by pytest-benchmark.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.scalability import ScalabilityConfig, ScalabilityEnvironment  # noqa: E402
from repro.study.environment import build_study_environment  # noqa: E402


@pytest.fixture(scope="session")
def scalability_env() -> ScalabilityEnvironment:
    """The shared substrate for the scalability figures (5-8).

    Uses the paper's 3,900-item catalogue with a scaled-down user population
    so that the whole benchmark suite completes in a couple of minutes.
    """
    return ScalabilityEnvironment(ScalabilityConfig())


@pytest.fixture(scope="session")
def study_env():
    """The shared study environment for the quality figures (1-3)."""
    return build_study_environment()


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark and return its result.

    The experiments are deterministic and relatively slow, so a single round
    is both sufficient and what keeps the harness fast.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
