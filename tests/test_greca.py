"""Unit tests for repro.core.greca (index construction and the algorithm)."""

from __future__ import annotations

import pytest

from repro.core.affinity import ComputedAffinities
from repro.core.baseline import NaiveFullScan
from repro.core.consensus import AVERAGE_PREFERENCE, LEAST_MISERY, make_consensus
from repro.core.greca import (
    STOP_BUFFER,
    STOP_EXHAUSTED,
    STOP_THRESHOLD,
    Greca,
    GrecaIndex,
)
from repro.core.lists import KIND_PERIODIC_AFFINITY, KIND_PREFERENCE, KIND_STATIC_AFFINITY, AccessCounter
from repro.exceptions import AlgorithmError, GroupError

APREFS = {
    1: {10: 5.0, 11: 4.0, 12: 1.0, 13: 2.0},
    2: {10: 4.5, 11: 3.0, 12: 2.0, 13: 1.0},
    3: {10: 4.0, 11: 1.0, 12: 5.0, 13: 3.0},
}
STATIC = {(1, 2): 0.9, (1, 3): 0.1, (2, 3): 0.4}
PERIODIC = {0: {(1, 2): 0.5, (1, 3): 0.2, (2, 3): 0.3}}
AVERAGES = {0: 0.2}


@pytest.fixture()
def index() -> GrecaIndex:
    return GrecaIndex(
        members=[1, 2, 3],
        aprefs=APREFS,
        static=STATIC,
        periodic=PERIODIC,
        averages=AVERAGES,
        max_apref=5.0,
    )


class TestGrecaIndex:
    def test_requires_at_least_two_members(self):
        with pytest.raises(GroupError):
            GrecaIndex(members=[1], aprefs=APREFS, static={})

    def test_rejects_duplicate_members(self):
        with pytest.raises(GroupError):
            GrecaIndex(members=[1, 1, 2], aprefs=APREFS, static={})

    def test_rejects_missing_member_preferences(self):
        with pytest.raises(GroupError):
            GrecaIndex(members=[1, 2, 99], aprefs=APREFS, static={})

    def test_rejects_unknown_time_model(self):
        with pytest.raises(AlgorithmError):
            GrecaIndex(members=[1, 2], aprefs=APREFS, static={}, time_model="fuzzy")

    def test_rejects_negative_preferences(self):
        bad = {1: {10: -1.0}, 2: {10: 2.0}}
        with pytest.raises(AlgorithmError):
            GrecaIndex(members=[1, 2], aprefs=bad, static={})

    def test_item_universe_is_union(self):
        aprefs = {1: {10: 1.0}, 2: {11: 2.0}}
        index = GrecaIndex(members=[1, 2], aprefs=aprefs, static={})
        assert index.items == (10, 11)
        # missing entries default to 0
        assert index.apref_matrix()[0, 1] == 0.0

    def test_affinity_matrix_symmetric_zero_diagonal(self, index):
        matrix = index.affinity_matrix()
        assert matrix.shape == (3, 3)
        assert (matrix == matrix.T).all()
        assert (matrix.diagonal() == 0).all()

    def test_pairs_order(self, index):
        assert index.pairs() == [(1, 2), (1, 3), (2, 3)]

    def test_scale_uses_max_apref(self, index):
        assert index.scale == pytest.approx(15.0)

    def test_build_lists_shapes_and_kinds(self, index):
        counter = AccessCounter()
        prefs, static, periodic = index.build_lists(counter)
        assert len(prefs) == 3 and all(p.kind == KIND_PREFERENCE for p in prefs)
        assert len(static) == 2 and all(s.kind == KIND_STATIC_AFFINITY for s in static)
        assert set(periodic) == {0}
        assert all(p.kind == KIND_PERIODIC_AFFINITY for p in periodic[0])

    def test_total_index_entries(self, index):
        # 3 members x 4 items + 3 pairs x (1 static + 1 periodic)
        assert index.total_index_entries() == 12 + 6

    def test_from_computed_matches_affinity_model(self, tiny_social, short_timeline):
        computed = ComputedAffinities(tiny_social, short_timeline)
        aprefs = {user: {1: 3.0, 2: 2.0} for user in (1, 2, 3)}
        index = GrecaIndex.from_computed(
            [1, 2, 3], aprefs, computed, period=short_timeline[1], time_model="discrete"
        )
        from repro.core.affinity import DiscreteAffinityModel

        model = DiscreteAffinityModel(computed)
        for left, right in index.pairs():
            assert index.affinity(left, right) == pytest.approx(
                model.affinity(left, right, short_timeline[1])
            )

    def test_exact_scores_cover_all_items(self, index):
        scores = index.exact_scores(AVERAGE_PREFERENCE)
        assert set(scores) == set(index.items)


class TestGrecaAlgorithm:
    def test_invalid_parameters(self):
        with pytest.raises(AlgorithmError):
            Greca(AVERAGE_PREFERENCE, k=0)
        with pytest.raises(AlgorithmError):
            Greca(AVERAGE_PREFERENCE, k=3, check_interval=0)

    def test_returns_k_items(self, index):
        result = Greca(AVERAGE_PREFERENCE, k=2, check_interval=1).run(index)
        assert len(result.items) == 2
        assert len(set(result.items)) == 2

    def test_k_larger_than_catalogue_is_truncated(self, index):
        result = Greca(AVERAGE_PREFERENCE, k=50, check_interval=1).run(index)
        assert set(result.items) == set(index.items)
        assert result.k == len(index.items)

    def test_matches_naive_scores(self, index):
        for consensus in (AVERAGE_PREFERENCE, LEAST_MISERY, make_consensus("PD")):
            greca = Greca(consensus, k=2, check_interval=1).run(index)
            naive = NaiveFullScan(consensus, k=2).run(index)
            greca_scores = sorted(index.exact_scores(consensus)[item] for item in greca.items)
            naive_scores = sorted(naive.scores.values())
            assert greca_scores == pytest.approx(naive_scores, abs=1e-9)

    def test_accesses_never_exceed_total(self, index):
        result = Greca(AVERAGE_PREFERENCE, k=1, check_interval=1).run(index)
        assert 0 < result.sequential_accesses <= result.total_entries
        assert result.random_accesses == 0  # GRECA only makes sequential accesses
        assert 0.0 < result.percent_sequential_accesses <= 100.0
        assert result.saveup == pytest.approx(100.0 - result.percent_sequential_accesses)

    def test_stopping_reason_is_reported(self, index):
        result = Greca(AVERAGE_PREFERENCE, k=1, check_interval=1).run(index)
        assert result.stopping in (STOP_BUFFER, STOP_THRESHOLD, STOP_EXHAUSTED)

    def test_result_metadata(self, index):
        result = Greca(LEAST_MISERY, k=2, check_interval=1).run(index)
        assert result.consensus == "MO"
        assert result.k == 2
        assert result.rounds >= 1
        assert set(result.exact_scores) == set(result.items)

    def test_check_interval_does_not_change_result_set(self, index):
        eager = Greca(AVERAGE_PREFERENCE, k=2, check_interval=1).run(index)
        lazy = Greca(AVERAGE_PREFERENCE, k=2, check_interval=50).run(index)
        exact = index.exact_scores(AVERAGE_PREFERENCE)
        assert sorted(exact[item] for item in eager.items) == pytest.approx(
            sorted(exact[item] for item in lazy.items)
        )
        assert lazy.sequential_accesses >= eager.sequential_accesses

    def test_no_affinity_index(self):
        """GRECA degrades gracefully to plain group recommendation without affinities."""
        index = GrecaIndex(members=[1, 2, 3], aprefs=APREFS, static={}, max_apref=5.0)
        result = Greca(AVERAGE_PREFERENCE, k=1, check_interval=1).run(index)
        naive = NaiveFullScan(AVERAGE_PREFERENCE, k=1).run(index)
        assert index.exact_scores(AVERAGE_PREFERENCE)[result.items[0]] == pytest.approx(
            list(naive.scores.values())[0]
        )
