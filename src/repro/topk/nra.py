"""Generic No-Random-Access (NRA) algorithm (Fagin, Lotem, Naor 2001).

GRECA "mimics the cursor movement of traditional NRA" (Lemma 3), so this
module provides a reference implementation of NRA over arbitrary sorted
lists and an arbitrary monotone aggregation function.  It serves two
purposes in the reproduction:

* a validation oracle — the property-based tests check that NRA and a full
  scan agree, and that GRECA's access pattern is the NRA round-robin; and
* a reusable substrate for any other top-k experiments a downstream user may
  want to run.

The access schedule is the textbook description — a round-robin of
sequential accesses, a worst-case/best-case score pair per seen object,
termination when the best case of every unseen or non-top-k object cannot
beat the worst case of the current top-k — but the bookkeeping runs on the
columnar engine shared with GRECA: component scores live in one
``(lists × objects)`` array scattered via each list's sort permutation, the
worst/best matrices are produced by vectorised ``np.where`` over the seen
columns, and the per-round ranking is an ``np.lexsort`` against a
precomputed ``repr`` tie-break ranking instead of a Python sort of all seen
objects per round.  When the aggregation function is elementwise (``sum``,
mean-style lambdas, numpy ufunc reductions) it is applied to whole matrix
rows at once — detected automatically and verified against the scalar
aggregation before being trusted; otherwise a scalar fallback preserves the
generic contract.  None of this changes which accesses are made.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Mapping, Sequence

import numpy as np

from repro.core.lists import (
    AccessCounter,
    SortedAccessList,
    repr_tie_break_ranks,
    total_entries,
)
from repro.exceptions import AlgorithmError

#: A monotone aggregation: maps one score per list to a single scalar.
AggregationFn = Callable[[Sequence[float]], float]


@dataclass(frozen=True)
class TopKResult:
    """Result of a generic top-k computation."""

    items: tuple[Hashable, ...]
    lower_bounds: Mapping[Hashable, float]
    upper_bounds: Mapping[Hashable, float]
    sequential_accesses: int
    random_accesses: int
    total_entries: int
    rounds: int

    @property
    def percent_sequential_accesses(self) -> float:
        """Fraction of entries read sequentially, in percent."""
        if self.total_entries == 0:
            return 0.0
        return 100.0 * self.sequential_accesses / self.total_entries


class KeyUniverse:
    """Columnar registry of every key across a set of sorted lists.

    Assigns each distinct key a dense column, maps every list's sorted
    positions onto those columns, and precomputes the deterministic
    ``repr``-based tie-break ranking used by the reproduction's orderings.
    Built from list introspection only — no accesses are counted.
    """

    def __init__(self, lists: Sequence[SortedAccessList[Hashable]]) -> None:
        column_of: dict[Hashable, int] = {}
        keys: list[Hashable] = []
        for access_list in lists:
            for key in access_list.keys:
                if key not in column_of:
                    column_of[key] = len(keys)
                    keys.append(key)
        self.keys = keys
        self.column_of = column_of
        self.size = len(keys)
        self.list_columns = [
            np.fromiter(
                (column_of[key] for key in access_list.keys),
                dtype=np.intp,
                count=len(access_list),
            )
            for access_list in lists
        ]
        self.repr_rank = repr_tie_break_ranks(keys)

    def ranked(self, columns: np.ndarray, primary: np.ndarray) -> np.ndarray:
        """``columns`` ordered by decreasing ``primary``, ties by ``repr`` rank."""
        order = np.lexsort((self.repr_rank[columns], -primary))
        return columns[order]


def shared_counter(lists: Sequence[SortedAccessList[Hashable]]) -> AccessCounter:
    counter = lists[0].counter
    for access_list in lists:
        if access_list.counter is not counter:
            raise AlgorithmError("all lists must share one AccessCounter")
    return counter


class NoRandomAccessAlgorithm:
    """NRA over ``len(lists)`` sorted lists with a monotone aggregation.

    Parameters
    ----------
    aggregation:
        Monotone function combining one component score per list; missing
        components are replaced by ``missing_low`` (worst case) or the list's
        cursor value (best case).
    k:
        Number of items to return.
    missing_low:
        Worst-case value assumed for a component that has not been seen yet
        (0 for non-negative scores).
    """

    def __init__(self, aggregation: AggregationFn, k: int, missing_low: float = 0.0) -> None:
        if k <= 0:
            raise AlgorithmError("k must be positive")
        self.aggregation = aggregation
        self.k = k
        self.missing_low = missing_low
        self._vectorized: bool | None = None

    def run(self, lists: Sequence[SortedAccessList[Hashable]]) -> TopKResult:
        """Execute NRA until the top-k is certain or every list is exhausted."""
        if not lists:
            raise AlgorithmError("NRA requires at least one input list")
        counter = shared_counter(lists)

        universe = KeyUniverse(lists)
        components = np.full((len(lists), universe.size), np.nan)
        seen = np.zeros(universe.size, dtype=bool)
        rounds = 0

        while True:
            progressed = False
            for position, access_list in enumerate(lists):
                start = access_list.position
                _, scores = access_list.sequential_block(1)
                if scores.size:
                    progressed = True
                    column = universe.list_columns[position][start]
                    components[position, column] = scores[0]
                    seen[column] = True
            rounds += 1
            exhausted = not progressed or all(access_list.exhausted for access_list in lists)

            seen_columns = np.flatnonzero(seen)
            lower, upper = self._bounds(components, seen_columns, lists)
            if seen_columns.size >= self.k:
                ranked = universe.ranked(seen_columns, lower)
                kth_lower = float(lower[np.searchsorted(seen_columns, ranked[self.k - 1])])
                cursors = [access_list.cursor_score for access_list in lists]
                threshold = self.aggregation(cursors)
                rest_positions = np.searchsorted(seen_columns, ranked[self.k :])
                others_beatable = bool((upper[rest_positions] > kth_lower + 1e-12).any())
                unseen_beatable = threshold > kth_lower + 1e-12 and not all(
                    access_list.exhausted for access_list in lists
                )
                if not others_beatable and not unseen_beatable:
                    return self._result(
                        universe, ranked, seen_columns, lower, upper, counter, lists, rounds
                    )
            if exhausted:
                ranked = universe.ranked(seen_columns, lower)
                return self._result(
                    universe, ranked, seen_columns, lower, upper, counter, lists, rounds
                )

    # -- helpers --------------------------------------------------------------------------------

    def _bounds(
        self,
        components: np.ndarray,
        seen_columns: np.ndarray,
        lists: Sequence[SortedAccessList[Hashable]],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Worst/best aggregated scores over the seen columns (vectorised)."""
        sub = components[:, seen_columns]
        unseen = np.isnan(sub)
        worst = np.where(unseen, self.missing_low, sub)
        cursors = np.array([access_list.cursor_score for access_list in lists])
        best = np.where(unseen, cursors[:, None], sub)
        return self._aggregate_rows(worst), self._aggregate_rows(best)

    def _aggregate_rows(self, matrix: np.ndarray) -> np.ndarray:
        """Apply the aggregation across matrix rows, vectorised when possible.

        Elementwise aggregations built from arithmetic on the component
        sequence (``sum``, mean lambdas, ufunc reductions) accept a list of
        row arrays and return the per-column aggregate in one call.  The
        first invocation verifies that claim column-by-column against the
        scalar aggregation and falls back to the scalar path — permanently —
        on any shape mismatch, exception, or value difference.
        """
        rows = list(matrix)
        width = matrix.shape[1]
        # Width-1 matrices are inconclusive (size-1 arrays support truth
        # testing, so e.g. `min` looks elementwise on them) — defer the
        # verdict until a wider matrix shows up.
        if self._vectorized is None and width > 1:
            try:
                candidate = self.aggregation(rows)
                valid = isinstance(candidate, np.ndarray) and candidate.shape == (width,)
                if valid:
                    valid = all(
                        candidate[column]
                        == self.aggregation([float(row[column]) for row in rows])
                        for column in range(width)
                    )
            except Exception:
                valid = False
            self._vectorized = bool(valid)
            if valid:
                return candidate
        elif self._vectorized:
            try:
                return self.aggregation(rows)
            except Exception:
                self._vectorized = False  # e.g. passed on width 1, failed wider
        result = np.empty(width)
        for column in range(width):
            result[column] = self.aggregation([float(row[column]) for row in rows])
        return result

    def _result(
        self,
        universe: KeyUniverse,
        ranked: np.ndarray,
        seen_columns: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
        counter: AccessCounter,
        lists: Sequence[SortedAccessList[Hashable]],
        rounds: int,
    ) -> TopKResult:
        top_columns = ranked[: self.k]
        positions = np.searchsorted(seen_columns, top_columns)
        top = tuple(universe.keys[column] for column in top_columns)
        return TopKResult(
            items=top,
            lower_bounds={key: float(lower[position]) for key, position in zip(top, positions)},
            upper_bounds={key: float(upper[position]) for key, position in zip(top, positions)},
            sequential_accesses=counter.sequential,
            random_accesses=counter.random,
            total_entries=total_entries(lists),
            rounds=rounds,
        )
