"""User-study (quality) simulator: satisfaction oracle and evaluation protocols."""

from repro.study.comparative import (
    FIGURE2_FUNCTIONS,
    FIGURE3_COMPARISONS,
    ComparativeChart,
    ComparativeEvaluation,
    ConsensusComparison,
)
from repro.study.environment import (
    CHARACTERISTICS,
    StudyEnvironment,
    StudyGroup,
    build_study_environment,
)
from repro.study.independent import (
    FIGURE1_CONFIGURATIONS,
    IndependentChart,
    IndependentEvaluation,
)
from repro.study.satisfaction import OracleConfig, SatisfactionOracle

__all__ = [
    "CHARACTERISTICS",
    "ComparativeChart",
    "ComparativeEvaluation",
    "ConsensusComparison",
    "FIGURE1_CONFIGURATIONS",
    "FIGURE2_FUNCTIONS",
    "FIGURE3_COMPARISONS",
    "IndependentChart",
    "IndependentEvaluation",
    "OracleConfig",
    "SatisfactionOracle",
    "StudyEnvironment",
    "StudyGroup",
    "build_study_environment",
]
